// Reproduces Fig. 7: normalized full-CMP ED^2P. The interesting paper
// observation this must reproduce: growing the DBRC compression cache makes
// the FULL-chip metric worse (the extra hardware's static/dynamic power is
// not paid back by additional speedup), so 4-entry DBRC beats 64-entry DBRC
// chip-wide even though its coverage is lower.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Fig. 7: normalized full-CMP ED^2P");

  const auto schemes = bench::fig6_schemes();
  std::vector<std::string> header{"Application"};
  for (const auto& s : schemes) header.push_back(s.name());
  TextTable t(header);
  std::vector<double> sums(schemes.size(), 0.0);
  unsigned napps = 0;

  for (const auto& app : workloads::all_apps()) {
    const auto base = bench::run_app(app, cmp::CmpConfig::baseline());
    std::vector<std::string> row{app.name};
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto r = bench::run_app(app, cmp::CmpConfig::heterogeneous(schemes[i]));
      const double ratio = r.full_cmp_ed2p() / base.full_cmp_ed2p();
      sums[i] += ratio;
      row.push_back(TextTable::fmt(ratio, 3));
    }
    t.add_row(std::move(row));
    ++napps;
    std::fprintf(stderr, "  %s done\n", app.name.c_str());
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (double s : sums) avg.push_back(TextTable::fmt(s / napps, 3));
  t.add_row(std::move(avg));

  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Paper shape: average full-CMP ED^2P improvements of 21%% (2-byte Stride)\n"
      "to 26%% (4-entry DBRC); larger DBRC caches do WORSE chip-wide because\n"
      "their extra area/power is not compensated by further speedup.\n");
  return 0;
}
