// Ablation: idealized vs conservative DBRC mirror synchronization.
//
// The paper (and our default) assumes receiver register files track the
// sender's compression cache for free. The conservative design implemented
// alongside it adds a per-destination valid vector per entry: the first send
// of each entry to each destination travels uncompressed. This bench
// quantifies the coverage and performance cost of that realizable design.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Ablation: DBRC mirror model (idealized vs per-dest valid bits)");

  TextTable t({"Application", "cov ideal", "cov conservative", "exec ideal",
               "exec conservative"});
  for (const char* name : {"MP3D", "FFT", "Ocean-cont", "Barnes"}) {
    const auto app = workloads::app(name);
    const auto base = bench::run_app(app, cmp::CmpConfig::baseline());

    auto ideal_scheme = compression::SchemeConfig::dbrc(4, 2);
    auto conservative_scheme = ideal_scheme;
    conservative_scheme.idealized_mirrors = false;

    const auto ideal = bench::run_app(app, cmp::CmpConfig::heterogeneous(ideal_scheme));
    const auto cons =
        bench::run_app(app, cmp::CmpConfig::heterogeneous(conservative_scheme));

    t.add_row({name, TextTable::pct(ideal.compression_coverage),
               TextTable::pct(cons.compression_coverage),
               TextTable::fmt(static_cast<double>(ideal.cycles.value()) /
                                  static_cast<double>(base.cycles.value()), 3),
               TextTable::fmt(static_cast<double>(cons.cycles.value()) /
                                  static_cast<double>(base.cycles.value()), 3)});
    std::fprintf(stderr, "  %s done\n", name);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("The conservative design pays one uncompressed install per (region,\n"
              "destination) pair; with 16 destinations that tax recurs on every\n"
              "entry eviction, costing coverage on irregular applications.\n");
  return 0;
}
