// Extension: topology sensitivity — 2D mesh vs two-level tree.
//
// Cheng et al. [6] evaluated their three-subnet interconnect on a two-level
// tree (processor-to-L2-bank) and saw good results, but "insignificant
// performance improvements ... for direct topologies (such as the 2D mesh)".
// Our tree is a tile-to-tile variant of that organization: 4 cluster routers
// + 1 root, double-length root links — few routers, wire-dominated hops.
//
// Two effects to observe:
//  * the VL/compression proposal's gain survives the topology change (its
//    narrow critical-path bundle scales with wire length);
//  * [6]'s static partition is exposed to the tree root's serialization: its
//    17-byte B subnet must squeeze all data replies through the root, which
//    on a *coherence* tree (unlike [6]'s L2-bank tree, where traffic is
//    processor<->bank only) becomes the bottleneck.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Extension: 2D mesh vs two-level tree topology");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  TextTable t({"Application", "topology", "base critlat", "exec Cheng'06",
               "exec proposal", "linkED2P proposal"});
  for (const char* name : {"MP3D", "Unstructured", "FFT", "Water-nsq"}) {
    const auto app = workloads::app(name);
    for (auto topo : {noc::Topology::kMesh2D, noc::Topology::kTree2Level}) {
      auto with_topo = [&](cmp::CmpConfig cfg) {
        cfg.topology = topo;
        return cfg;
      };
      const auto base = bench::run_app(app, with_topo(cmp::CmpConfig::baseline()));
      const auto cheng = bench::run_app(app, with_topo(cmp::CmpConfig::cheng3way()));
      const auto ours =
          bench::run_app(app, with_topo(cmp::CmpConfig::heterogeneous(scheme)));
      t.add_row({name, topo == noc::Topology::kMesh2D ? "mesh 4x4" : "tree 4+1",
                 TextTable::fmt(base.avg_critical_latency, 1),
                 TextTable::fmt(static_cast<double>(cheng.cycles.value()) /
                                    static_cast<double>(base.cycles.value()), 3),
                 TextTable::fmt(static_cast<double>(ours.cycles.value()) /
                                    static_cast<double>(base.cycles.value()), 3),
                 TextTable::fmt(ours.link_ed2p() / base.link_ed2p(), 3)});
      std::fprintf(stderr, "  %s/%s done\n", name,
                   topo == noc::Topology::kMesh2D ? "mesh" : "tree");
    }
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
