// Micro-benchmarks (google-benchmark): simulation-kernel throughput — idle
// and loaded network ticks, and whole-CMP cycles per second. These are the
// numbers that budget the fig6/fig7 sweeps.
#include <benchmark/benchmark.h>

#include <memory>

#include "cmp/system.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "wire/link_design.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

void BM_NetworkTickIdle(benchmark::State& state) {
  noc::NocConfig cfg;
  cfg.channels = noc::make_channels(wire::paper_het_link(4));
  StatRegistry stats;
  noc::Network net(cfg, &stats);
  net.set_deliver([](NodeId, const protocol::CoherenceMsg&) {});
  Cycle now{0};
  for (auto _ : state) net.tick(++now);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkTickIdle);

void BM_NetworkTickLoaded(benchmark::State& state) {
  noc::NocConfig cfg;
  cfg.channels = noc::make_channels(wire::baseline_link());
  StatRegistry stats;
  noc::Network net(cfg, &stats);
  net.set_deliver([](NodeId, const protocol::CoherenceMsg&) {});
  Rng rng(5);
  Cycle now{0};
  for (auto _ : state) {
    for (unsigned n = 0; n < 16; ++n) {
      if (!rng.chance(0.2)) continue;
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == n) continue;
      protocol::CoherenceMsg msg;
      msg.type = protocol::MsgType::kGetS;
      msg.src = static_cast<NodeId>(n);
      msg.dst = dst;
      net.inject(msg, noc::kBChannel, Bytes{11}, now);
    }
    net.tick(++now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkTickLoaded);

void BM_FullSystemStep(benchmark::State& state) {
  const auto params = workloads::app("MP3D");
  cmp::CmpSystem system(
      cmp::CmpConfig::heterogeneous(compression::SchemeConfig::dbrc(4, 2)),
      std::make_shared<workloads::SyntheticApp>(params, 16));
  for (auto _ : state) system.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSystemStep);

}  // namespace
