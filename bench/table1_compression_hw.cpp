// Reproduces Table 1: area and power characteristics of the address
// compression schemes for a 16-core tiled CMP, from the cacti_mini analytical
// model, next to the published CACTI 4.1 values.
#include <cstdio>

#include "common/table.hpp"
#include "compression/hw_cost.hpp"
#include "power/cacti_mini.hpp"

using namespace tcmp;

namespace {

struct PaperRow {
  compression::SchemeConfig cfg;
  unsigned size_bytes;
  double area_mm2, dyn_w, static_mw;
};

}  // namespace

int main() {
  std::printf("=== Table 1: compression hardware cost (per core, 16-core CMP, 65 nm) ===\n\n");

  const PaperRow rows[] = {
      {compression::SchemeConfig::dbrc(4, 2), 1088, 0.0723, 0.1065, 10.78},
      {compression::SchemeConfig::dbrc(16, 2), 4352, 0.2678, 0.3848, 43.03},
      {compression::SchemeConfig::dbrc(64, 2), 17408, 0.8240, 0.7078, 133.42},
      {compression::SchemeConfig::stride(2), 272, 0.0257, 0.0561, 5.14},
  };

  TextTable t({"Scheme", "Size (B)", "Area mm2", "(paper)", "%core", "MaxDyn W",
               "(paper)", "Static mW", "(paper)", "%core"});
  for (const auto& row : rows) {
    const auto cost = compression::scheme_hw_cost(row.cfg, 16);
    t.add_row({row.cfg.name(), std::to_string(cost.storage_bytes_per_core),
               TextTable::fmt(units::to_mm2(cost.area_per_core), 4),
               TextTable::fmt(row.area_mm2, 4),
               TextTable::pct(cost.area_per_core / power::kCoreArea, 2),
               TextTable::fmt(cost.max_dyn_power_per_core.value(), 4),
               TextTable::fmt(row.dyn_w, 4),
               TextTable::fmt(units::to_mw(cost.leakage_per_core), 2),
               TextTable::fmt(row.static_mw, 2),
               TextTable::pct(cost.leakage_per_core / power::kCoreStaticPower, 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Size column must match the paper exactly; area/power columns come from\n"
              "the cacti_mini fit (endpoints calibrated, midpoints within ~35%%).\n");
  return 0;
}
