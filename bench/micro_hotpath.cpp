// Hot-path data-plane microbenchmark: guards the cost of the structures
// every *live* cycle touches (interned stat handles, fixed-capacity router
// rings, the flat NIC reorder window, the directory's pooled pending queues
// and FIFO latency pipes — see docs/performance.md).
//
// Two phases:
//
//   stat-bump         — per-event counter bumps through the string-keyed
//                       StatRegistry::counter(name) path versus interned
//                       CounterRef handles, over the simulator's real hot
//                       counter names. Metric: handle/string speedup (a
//                       same-process ratio, portable across hosts).
//   saturated-traffic — a heterogeneous-link configuration driven by a
//                       low-locality, high-sharing workload: every cycle is
//                       live and NoC/NIC/directory-bound, so simulated
//                       cycles per wall second is dominated by the hot-path
//                       data structures, not the kernel. Metric: cycles per
//                       wall second normalized by a host-calibration loop
//                       (pointer-chase + ALU mix) measured in the same
//                       process, which removes most of the runner-speed
//                       dependence from the committed baseline.
//
// The recorded per-phase "metric" is what --baseline enforces (same >20%
// policy as BENCH_kernel.json); the other fields are informational from the
// recording run.
//
// Usage:
//   micro_hotpath [--json out.json] [--baseline BENCH_hotpath.json]
//                 [--tolerance 0.2]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cmp/system.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

struct PhaseResult {
  std::string name;
  double metric = 0.0;  ///< the enforced regression metric
  std::string detail;   ///< informational (printed + recorded)
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- host calibration ------------------------------------------------------

/// Fixed-work host-speed proxy: a xorshift-indexed walk over a 4 MB array
/// with an ALU-heavy accumulate, returning millions of steps per second.
/// The simulator's live-cycle work is a similar mix of dependent loads and
/// integer ops, so cps/calib_mops is far more host-invariant than raw cps.
double calibrate_mops() {
  constexpr std::size_t kWords = 1u << 19;  // 4 MB of uint64
  std::vector<std::uint64_t> mem(kWords);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto& w : mem) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w = x;
  }
  constexpr std::uint64_t kSteps = 30'000'000;
  std::uint64_t acc = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    acc += mem[x & (kWords - 1)] * 0x2545F4914F6CDD1Dull + (acc >> 3);
  }
  const double s = seconds_since(t0);
  // Keep the accumulator observable so the loop cannot be elided.
  if (acc == 0xDEADBEEF) std::fprintf(stderr, "calibration anchor\n");
  return static_cast<double>(kSteps) / s / 1e6;
}

// --- stat-bump -------------------------------------------------------------

/// The simulator's real per-event counters (the L1/directory/NIC bump set).
const char* const kHotCounters[] = {
    "l1.accesses",        "l1.read_misses",      "l1.write_misses",
    "l2.accesses",        "dir.queued_on_busy",  "dir.cache_to_cache",
    "mem.reads",          "l2.evictions",        "msg_remote.count",
    "msg_local.count",    "compression.compressed",
    "het.b_messages",     "het.vl_messages",     "het.reordered_messages",
    "core.miss_stalls",   "sync.barrier_arrivals",
};
constexpr std::size_t kNumHot = sizeof(kHotCounters) / sizeof(kHotCounters[0]);

PhaseResult run_stat_bump() {
  constexpr std::uint64_t kRounds = 400'000;  // x16 counters per round

  StatRegistry by_string;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (const char* name : kHotCounters) ++by_string.counter(name);
  }
  const double string_s = seconds_since(t0);

  StatRegistry by_handle;
  CounterRef refs[kNumHot];
  for (std::size_t i = 0; i < kNumHot; ++i) {
    refs[i] = by_handle.counter_ref(kHotCounters[i]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (auto& ref : refs) ++ref;
  }
  const double handle_s = seconds_since(t1);

  // The two paths must land in the identical counter map (the bench doubles
  // as an equality smoke; tests/test_common.cpp holds the full test).
  TCMP_CHECK_MSG(by_string.counters() == by_handle.counters(),
                 "handle and string bump paths diverged");

  const double bumps = static_cast<double>(kRounds) * kNumHot;
  const double string_mops = bumps / string_s / 1e6;
  const double handle_mops = bumps / handle_s / 1e6;
  PhaseResult r;
  r.name = "stat-bump";
  r.metric = handle_mops / string_mops;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"string_mops\": %.1f, \"handle_mops\": %.1f", string_mops,
                handle_mops);
  r.detail = buf;
  return r;
}

// --- saturated-traffic -----------------------------------------------------

PhaseResult run_saturated_traffic(double calib_mops) {
  workloads::AppParams p;
  p.name = "hotpath-saturated";
  p.ops_per_core = 6000;
  p.warmup_frac = 0.0;
  p.spatial_locality = 0.2;   // mostly misses: every access talks to a home
  p.line_dwell = 1.0;
  p.private_lines = 1 << 14;  // L1-busting, L2-resident footprint
  p.shared_frac = 0.4;        // heavy cross-tile sharing: forwards + invs
  p.compute_per_mem = 0.0;

  compression::SchemeConfig scheme;
  scheme.kind = compression::SchemeKind::kDbrc;
  scheme.entries = 16;
  cmp::CmpConfig cfg = cmp::CmpConfig::heterogeneous(scheme);
  cfg.l2.memory_latency = Cycle{100};  // keep the machine traffic-bound

  cmp::CmpSystem system(cfg,
                        std::make_shared<workloads::SyntheticApp>(p, cfg.n_tiles));
  const auto t0 = std::chrono::steady_clock::now();
  const bool finished = system.run();
  const double s = seconds_since(t0);
  TCMP_CHECK_MSG(finished, "saturated-traffic phase did not finish");

  const double cps = static_cast<double>(system.total_cycles().value()) / s;
  PhaseResult r;
  r.name = "saturated-traffic";
  r.metric = cps / calib_mops / 1e3;  // dimensionless; ~O(1) by construction
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "\"cycles\": %llu, \"cps\": %.0f, \"calib_mops\": %.1f",
                static_cast<unsigned long long>(system.total_cycles().value()),
                cps, calib_mops);
  r.detail = buf;
  return r;
}

// --- JSON / baseline -------------------------------------------------------

std::string to_json(const std::vector<PhaseResult>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_hotpath\",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", r.metric);
    out << "    {\"name\": \"" << r.name << "\", \"metric\": " << buf << ", "
        << r.detail << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Pull `"metric": <num>` for phase `name` out of a baseline JSON written by
/// to_json (flat, known shape — no general JSON parser needed).
bool baseline_metric(const std::string& json, const std::string& name,
                     double* metric) {
  const std::string key = "\"name\": \"" + name + "\"";
  const auto at = json.find(key);
  if (at == std::string::npos) return false;
  const std::string field = "\"metric\": ";
  const auto sp = json.find(field, at);
  if (sp == std::string::npos) return false;
  *metric = std::strtod(json.c_str() + sp + field.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path;
  double tolerance = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--baseline base.json] "
                   "[--tolerance 0.2]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== micro_hotpath: hot-path data-plane throughput ===\n\n");
  std::fprintf(stderr, "  calibrating host...\n");
  const double calib = calibrate_mops();
  std::vector<PhaseResult> results;
  std::fprintf(stderr, "  running stat-bump...\n");
  results.push_back(run_stat_bump());
  std::fprintf(stderr, "  running saturated-traffic...\n");
  results.push_back(run_saturated_traffic(calib));

  TextTable t({"phase", "metric", "detail"});
  for (const PhaseResult& r : results) {
    t.add_row({r.name, TextTable::fmt(r.metric, 3), r.detail});
  }
  std::printf("%s\n", t.str().c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(results);
    TCMP_CHECK_MSG(out.good(), "could not write --json output");
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (baseline_path.empty()) return 0;

  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string base = ss.str();
  int failures = 0;
  for (const PhaseResult& r : results) {
    double want = 0.0;
    if (!baseline_metric(base, r.name, &want)) {
      std::fprintf(stderr, "baseline missing phase %s\n", r.name.c_str());
      ++failures;
      continue;
    }
    const double floor = want * (1.0 - tolerance);
    const bool ok = r.metric >= floor;
    std::printf("%-18s metric %.3f vs baseline %.3f (floor %.3f): %s\n",
                r.name.c_str(), r.metric, want, floor, ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
