// Ablation: link switching activity (alpha). Our link energy accounting
// charges traffic-proportional dynamic energy plus inventory-proportional
// leakage; at SPLASH-level link utilization leakage dominates, which is why
// our link ED^2P gains overshoot the paper's 38% (see EXPERIMENTS.md). This
// bench sweeps alpha to show how the gain would look under
// dynamic-power-dominated accounting.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Ablation: link ED^2P gain vs switching activity");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  const auto app = workloads::app("MP3D");

  TextTable t({"alpha", "base link E (mJ)", "dyn share", "het/base link ED2P"});
  for (double alpha : {0.05, 0.15, 0.5, 1.0, 2.0, 5.0}) {
    cmp::CmpConfig base_cfg = cmp::CmpConfig::baseline();
    cmp::CmpConfig het_cfg = cmp::CmpConfig::heterogeneous(scheme);
    base_cfg.switching_activity = het_cfg.switching_activity = alpha;
    const auto base = bench::run_app(app, base_cfg);
    const auto het = bench::run_app(app, het_cfg);
    const double dyn_share =
        base.energy.get(power::EnergyAccount::kLinkDynamic) / base.link_energy();
    t.add_row({TextTable::fmt(alpha, 2), TextTable::fmt(1e3 * base.link_energy().value(), 2),
               TextTable::pct(dyn_share), TextTable::fmt(het.link_ed2p() / base.link_ed2p(), 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("alpha > 1 is unphysical for real traffic but shows the asymptote: as\n"
              "dynamic energy dominates, the link energy ratio approaches ~1 (data\n"
              "bits toggle either way) and the ED^2P gain is carried by the speedup\n"
              "squared; as leakage dominates it approaches the 0.47x wire-inventory\n"
              "ratio. The paper's 38%% sits between the two regimes.\n");
  return 0;
}
