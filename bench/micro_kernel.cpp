// Simulation-kernel microbenchmark: simulated cycles per wall-clock second
// for the event-scheduled kernel (dead-cycle skipping) versus the plain
// per-cycle loop, over three machine phases:
//
//   idle         — cores block on very long memory latency; almost every
//                  cycle is globally dead (the kernel's best case).
//   memory-bound — 400-cycle memory, blocking in-order cores (MLP 1): the
//                  paper-relevant regime, most cycles dead.
//   saturated    — L1-resident compute-heavy phase: every cycle live, so
//                  this bounds the kernel's bookkeeping overhead (~1x).
//
// Both modes run the identical workload and must produce identical cycle
// and instruction counts (checked here — the bench doubles as a determinism
// cross-check). The recorded regression metric is the per-phase SPEEDUP
// (event-kernel cycles/sec divided by per-cycle-loop cycles/sec, measured in
// the same process on the same machine): absolute cycles/sec depends on the
// host, but the ratio normalizes that out, so a committed baseline
// (bench/BENCH_kernel.json) is portable across CI runners.
//
// Usage:
//   micro_kernel [--json out.json] [--baseline BENCH_kernel.json]
//                [--tolerance 0.2]
// With --baseline, exits non-zero when any phase's speedup falls more than
// `tolerance` (relative) below the committed value.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cmp/system.hpp"
#include "common/check.hpp"
#include "common/table.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

struct PhaseSpec {
  std::string name;
  workloads::AppParams params;
  cmp::CmpConfig cfg;
  unsigned active_cores = 0;  ///< 0 = all
};

/// Restricts a workload to its first `n_active` cores (the rest finish
/// immediately). This is how the idle and memory-bound phases pin the
/// chip-level MLP: a blocking in-order core has MLP 1, so `n_active` bounds
/// the number of concurrent misses in the whole machine.
class ActiveSubsetWorkload final : public core::Workload {
 public:
  ActiveSubsetWorkload(std::shared_ptr<core::Workload> inner, unsigned n_active)
      : inner_(std::move(inner)), n_active_(n_active) {}

  core::Op next(unsigned core) override {
    return core < n_active_ ? inner_->next(core) : core::Op::done();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] bool has_warmup() const override { return inner_->has_warmup(); }
  [[nodiscard]] std::uint64_t code_lines() const override {
    return inner_->code_lines();
  }

 private:
  std::shared_ptr<core::Workload> inner_;
  unsigned n_active_;
};

struct PhaseResult {
  std::string name;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double event_cps = 0.0;  ///< simulated cycles / wall second, event kernel
  double loop_cps = 0.0;   ///< same workload, per-cycle loop
  double speedup = 0.0;    ///< event_cps / loop_cps
};

workloads::AppParams phase_params(const char* name, std::uint64_t ops,
                                  double locality, std::uint64_t footprint,
                                  double compute) {
  workloads::AppParams p;
  p.name = name;
  p.ops_per_core = ops;
  p.warmup_frac = 0.0;  // no functional warmup: measure one steady phase
  p.spatial_locality = locality;
  p.line_dwell = 1.0;
  p.private_lines = footprint;
  p.shared_frac = 0.05;
  p.compute_per_mem = compute;
  return p;
}

std::vector<PhaseSpec> phases() {
  std::vector<PhaseSpec> out;
  // idle: a single active core missing into a 2000-cycle memory — the
  // machine spends >99% of its cycles with nothing to do at all.
  {
    PhaseSpec s{"idle", phase_params("idle", 2000, 0.1, 1 << 16, 0.0),
                cmp::CmpConfig::baseline(), /*active_cores=*/1};
    s.cfg.l2.memory_latency = Cycle{2000};
    out.push_back(std::move(s));
  }
  // memory-bound: Table-4 400-cycle memory, cache-busting footprint, two
  // active blocking cores (chip MLP 2) — the sync-heavy straggler regime
  // the paper's barrier-dense applications spend much of their time in.
  {
    PhaseSpec s{"memory-bound",
                phase_params("memory-bound", 4000, 0.1, 1 << 16, 0.0),
                cmp::CmpConfig::baseline(), /*active_cores=*/2};
    s.cfg.l2.memory_latency = Cycle{400};
    out.push_back(std::move(s));
  }
  // saturated: all 16 cores on an L1-resident working set with compute
  // between accesses; cores are runnable virtually every cycle, so nothing
  // can be skipped — this bounds the kernel's bookkeeping overhead.
  {
    PhaseSpec s{"saturated", phase_params("saturated", 20000, 0.98, 256, 4.0),
                cmp::CmpConfig::baseline(), /*active_cores=*/0};
    out.push_back(std::move(s));
  }
  return out;
}

/// One timed run; returns (total cycles, instructions, wall seconds).
void run_once(const PhaseSpec& spec, bool dead_cycle_skipping,
              std::uint64_t* cycles, std::uint64_t* instructions,
              double* seconds) {
  std::shared_ptr<core::Workload> workload =
      std::make_shared<workloads::SyntheticApp>(spec.params, spec.cfg.n_tiles);
  if (spec.active_cores != 0) {
    workload = std::make_shared<ActiveSubsetWorkload>(std::move(workload),
                                                      spec.active_cores);
  }
  cmp::CmpSystem system(spec.cfg, workload);
  system.set_dead_cycle_skipping(dead_cycle_skipping);
  const auto t0 = std::chrono::steady_clock::now();
  const bool finished = system.run();
  const auto t1 = std::chrono::steady_clock::now();
  TCMP_CHECK_MSG(finished, "micro_kernel phase did not finish");
  *cycles = system.total_cycles().value();
  *instructions = system.total_instructions();
  *seconds = std::chrono::duration<double>(t1 - t0).count();
}

PhaseResult run_phase(const PhaseSpec& spec) {
  PhaseResult r;
  r.name = spec.name;
  std::uint64_t loop_cycles = 0, loop_instr = 0;
  double event_s = 0.0, loop_s = 0.0;
  run_once(spec, /*dead_cycle_skipping=*/true, &r.cycles, &r.instructions,
           &event_s);
  run_once(spec, /*dead_cycle_skipping=*/false, &loop_cycles, &loop_instr,
           &loop_s);
  TCMP_CHECK_MSG(loop_cycles == r.cycles && loop_instr == r.instructions,
                 "event kernel diverged from the per-cycle loop");
  r.event_cps = static_cast<double>(r.cycles) / event_s;
  r.loop_cps = static_cast<double>(loop_cycles) / loop_s;
  r.speedup = r.event_cps / r.loop_cps;
  return r;
}

std::string to_json(const std::vector<PhaseResult>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"micro_kernel\",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"cycles\": %llu, "
                  "\"event_cps\": %.0f, \"loop_cps\": %.0f, "
                  "\"speedup\": %.3f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.cycles),
                  r.event_cps, r.loop_cps, r.speedup,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Pull `"speedup": <num>` for phase `name` out of a baseline JSON written
/// by to_json (flat, known shape — no general JSON parser needed).
bool baseline_speedup(const std::string& json, const std::string& name,
                      double* speedup) {
  const std::string key = "\"name\": \"" + name + "\"";
  const auto at = json.find(key);
  if (at == std::string::npos) return false;
  const std::string field = "\"speedup\": ";
  const auto sp = json.find(field, at);
  if (sp == std::string::npos) return false;
  *speedup = std::strtod(json.c_str() + sp + field.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path;
  double tolerance = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--baseline base.json] "
                   "[--tolerance 0.2]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== micro_kernel: simulated cycles per wall second ===\n\n");
  std::vector<PhaseResult> results;
  for (const PhaseSpec& spec : phases()) {
    std::fprintf(stderr, "  running %s...\n", spec.name.c_str());
    results.push_back(run_phase(spec));
  }

  TextTable t({"phase", "sim cycles", "event kernel c/s", "per-cycle loop c/s",
               "speedup"});
  for (const PhaseResult& r : results) {
    t.add_row({r.name, std::to_string(r.cycles), TextTable::fmt(r.event_cps, 0),
               TextTable::fmt(r.loop_cps, 0), TextTable::fmt(r.speedup, 2)});
  }
  std::printf("%s\n", t.str().c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(results);
    TCMP_CHECK_MSG(out.good(), "could not write --json output");
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (baseline_path.empty()) return 0;

  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string base = ss.str();
  int failures = 0;
  for (const PhaseResult& r : results) {
    double want = 0.0;
    if (!baseline_speedup(base, r.name, &want)) {
      std::fprintf(stderr, "baseline missing phase %s\n", r.name.c_str());
      ++failures;
      continue;
    }
    const double floor = want * (1.0 - tolerance);
    const bool ok = r.speedup >= floor;
    std::printf("%-14s speedup %.2f vs baseline %.2f (floor %.2f): %s\n",
                r.name.c_str(), r.speedup, want, floor, ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
