// Comparative baseline: Cheng et al. [6]'s three-subnet heterogeneous
// interconnect (11B L-Wires + 17B B-Wires + 28B PW-Wires, latency/bandwidth
// static mapping, no compression) against the paper's proposal
// (compression + VL-Wires) on the same 600-track budget.
//
// The paper motivates itself with [6]'s result that "insignificant
// performance improvements are reported for direct topologies (such as the
// 2D mesh typically employed in tiled CMPs)" — this bench reproduces that
// comparison end to end.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header(
      "Comparison: Cheng'06 three-subnet [6] vs compression + VL-Wires");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  TextTable t({"Application", "exec Cheng'06", "exec proposal", "linkED2P Cheng'06",
               "linkED2P proposal"});
  double se_c = 0, se_p = 0, sl_c = 0, sl_p = 0;
  unsigned n = 0;
  for (const auto& app : workloads::all_apps()) {
    const auto base = bench::run_app(app, cmp::CmpConfig::baseline());
    const auto cheng = bench::run_app(app, cmp::CmpConfig::cheng3way());
    const auto ours = bench::run_app(app, cmp::CmpConfig::heterogeneous(scheme));
    const double ec = static_cast<double>(cheng.cycles.value()) / static_cast<double>(base.cycles.value());
    const double ep = static_cast<double>(ours.cycles.value()) / static_cast<double>(base.cycles.value());
    const double lc = cheng.link_ed2p() / base.link_ed2p();
    const double lp = ours.link_ed2p() / base.link_ed2p();
    t.add_row({app.name, TextTable::fmt(ec, 3), TextTable::fmt(ep, 3),
               TextTable::fmt(lc, 3), TextTable::fmt(lp, 3)});
    se_c += ec;
    se_p += ep;
    sl_c += lc;
    sl_p += lp;
    ++n;
    std::fprintf(stderr, "  %s done\n", app.name.c_str());
  }
  t.add_row({"AVERAGE", TextTable::fmt(se_c / n, 3), TextTable::fmt(se_p / n, 3),
             TextTable::fmt(sl_c / n, 3), TextTable::fmt(sl_p / n, 3)});
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Expected shape: [6]'s subnets barely move execution time on the 2D mesh\n"
      "(its L-wires shave 1 cycle/hop while its narrow 17-byte B subnet slows\n"
      "data replies, and PW writebacks crawl), though its PW subnet does cut\n"
      "link energy. The proposal converts the same area into latency where it\n"
      "matters and wins on both axes — the paper's motivating comparison.\n");
  return 0;
}
