// Partitioned-driver microbenchmark: simulated cycles per wall second on a
// saturated 256-tile (16x16) mesh at --threads 8 versus --threads 1
// (docs/partitioning.md). Saturated means every core is runnable virtually
// every cycle, so nothing can be dead-cycle-skipped and the measurement is
// pure per-cycle throughput — the regime where partitioning the mesh across
// host threads is supposed to pay.
//
// Both runs execute the identical workload and must produce identical cycle
// and instruction counts (checked on every run — the bench doubles as a
// determinism cross-check of the partition seam).
//
// The recorded metric is the SPEEDUP (threads-8 cycles/sec divided by
// threads-1 cycles/sec, same process, same machine) plus the host's core
// count, because the ratio is only meaningful relative to available
// parallelism: cycle-lockstep threading cannot speed anything up on a host
// that runs the 8 partitions on fewer than 8 cores — there it measures pure
// barrier/boundary overhead instead. The --baseline gate is therefore
// host-aware:
//
//   host cores >= 8  -> enforce the >= 2x speedup target directly
//                       (tolerance-scaled), regardless of where the
//                       committed baseline was recorded;
//   host cores <  8  -> enforce the overhead bound: speedup must not fall
//                       more than `tolerance` below the committed value,
//                       provided the baseline came from a comparably
//                       oversubscribed host (its recorded host_cores < 8) —
//                       otherwise the throughput gate is skipped with a
//                       notice and only the identity cross-check gates.
//
// Usage:
//   micro_partition [--json out.json] [--baseline BENCH_partition.json]
//                   [--tolerance 0.2]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "cmp/system.hpp"
#include "common/check.hpp"
#include "common/table.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

constexpr unsigned kTiles = 256;
constexpr unsigned kThreads = 8;
constexpr double kSpeedupTarget = 2.0;  ///< acceptance bar on >= 8-core hosts

cmp::CmpConfig mesh_config(unsigned threads) {
  auto cfg = cmp::CmpConfig::baseline();
  cfg.with_tiles(kTiles);
  cfg.threads = threads;
  return cfg;
}

/// Saturated phase: L1-resident working set, compute between accesses —
/// cores runnable virtually every cycle (same shape as micro_kernel's
/// "saturated" phase, scaled to keep the 256-tile run CI-sized).
workloads::AppParams saturated_params() {
  workloads::AppParams p;
  p.name = "saturated-256";
  p.ops_per_core = 3000;
  p.warmup_frac = 0.0;
  p.spatial_locality = 0.98;
  p.line_dwell = 1.0;
  p.private_lines = 256;
  p.shared_frac = 0.05;
  p.compute_per_mem = 4.0;
  return p;
}

struct RunSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double cps = 0.0;  ///< simulated cycles per wall second
};

RunSample run_once(unsigned threads) {
  const auto cfg = mesh_config(threads);
  cmp::CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                                 saturated_params(), cfg.n_tiles));
  const auto t0 = std::chrono::steady_clock::now();
  const bool finished = system.run();
  const auto t1 = std::chrono::steady_clock::now();
  TCMP_CHECK_MSG(finished, "micro_partition run did not finish");
  RunSample s;
  s.cycles = system.total_cycles().value();
  s.instructions = system.total_instructions();
  s.cps = static_cast<double>(s.cycles) /
          std::chrono::duration<double>(t1 - t0).count();
  return s;
}

std::string to_json(const RunSample& one, const RunSample& eight,
                    double speedup, unsigned host_cores) {
  std::ostringstream out;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"micro_partition\",\n"
                "  \"tiles\": %u,\n"
                "  \"threads\": %u,\n"
                "  \"host_cores\": %u,\n"
                "  \"cycles\": %llu,\n"
                "  \"threads1_cps\": %.0f,\n"
                "  \"threads8_cps\": %.0f,\n"
                "  \"speedup\": %.3f\n"
                "}\n",
                kTiles, kThreads, host_cores,
                static_cast<unsigned long long>(one.cycles), one.cps,
                eight.cps, speedup);
  out << buf;
  return out.str();
}

/// Pull `"key": <num>` out of a baseline JSON written by to_json (flat,
/// known shape — no general JSON parser needed).
bool json_number(const std::string& json, const std::string& key, double* out) {
  const std::string field = "\"" + key + "\": ";
  const auto at = json.find(field);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + field.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path;
  double tolerance = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--baseline base.json] "
                   "[--tolerance 0.2]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("=== micro_partition: saturated %u-tile mesh, --threads %u vs 1 "
              "(host cores: %u) ===\n\n",
              kTiles, kThreads, host_cores);

  std::fprintf(stderr, "  running --threads 1...\n");
  const RunSample one = run_once(1);
  std::fprintf(stderr, "  running --threads %u...\n", kThreads);
  const RunSample eight = run_once(kThreads);

  TCMP_CHECK_MSG(
      one.cycles == eight.cycles && one.instructions == eight.instructions,
      "partitioned run diverged from the single-threaded run");
  const double speedup = eight.cps / one.cps;

  TextTable t({"threads", "sim cycles", "cycles/sec"});
  t.add_row({"1", std::to_string(one.cycles), TextTable::fmt(one.cps, 0)});
  t.add_row({std::to_string(kThreads), std::to_string(eight.cycles),
             TextTable::fmt(eight.cps, 0)});
  std::printf("%s\nspeedup: %.3fx (identical cycle/instruction counts "
              "verified)\n",
              t.str().c_str(), speedup);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(one, eight, speedup, host_cores);
    TCMP_CHECK_MSG(out.good(), "could not write --json output");
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (baseline_path.empty()) return 0;

  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string base = ss.str();

  double base_speedup = 0.0, base_cores = 0.0;
  if (!json_number(base, "speedup", &base_speedup) ||
      !json_number(base, "host_cores", &base_cores)) {
    std::fprintf(stderr, "baseline missing speedup/host_cores fields\n");
    return 2;
  }

  double floor = 0.0;
  const char* gate = nullptr;
  if (host_cores >= kThreads) {
    floor = kSpeedupTarget * (1.0 - tolerance);
    gate = "parallel-speedup target";
  } else if (base_cores < static_cast<double>(kThreads)) {
    floor = base_speedup * (1.0 - tolerance);
    gate = "oversubscribed-host overhead bound";
  } else {
    std::printf("gate skipped: host has %u cores but baseline was recorded "
                "on a %.0f-core host — no comparable throughput bound "
                "(identity cross-check still enforced above)\n",
                host_cores, base_cores);
    return 0;
  }

  if (speedup < floor) {
    std::fprintf(stderr,
                 "FAIL [%s]: speedup %.3f below floor %.3f "
                 "(baseline %.3f at %.0f host cores, tolerance %.2f)\n",
                 gate, speedup, floor, base_speedup, base_cores, tolerance);
    return 1;
  }
  std::printf("ok [%s]: speedup %.3f >= floor %.3f\n", gate, speedup, floor);
  return 0;
}
