// Ablation: router pipeline depth. The proposal's benefit is link-latency
// driven, so deeper router pipelines dilute it — the effect Cheng et al. [6]
// observed when heterogeneous wires gave "insignificant" gains on direct
// topologies with slow routers. DESIGN.md calls out the single-cycle router
// as the design point that lets VL-Wires shine; this bench quantifies it.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Ablation: router pipeline depth (single-cycle vs 3-stage)");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  TextTable t({"Application", "gain 1-cyc router", "gain 3-stage router"});
  for (const char* name : {"MP3D", "Unstructured", "FFT", "Water-nsq"}) {
    const auto app = workloads::app(name);
    double gains[2];
    for (int deep = 0; deep < 2; ++deep) {
      cmp::CmpConfig base_cfg = cmp::CmpConfig::baseline();
      cmp::CmpConfig het_cfg = cmp::CmpConfig::heterogeneous(scheme);
      base_cfg.single_cycle_router = het_cfg.single_cycle_router = (deep == 0);
      const auto base = bench::run_app(app, base_cfg);
      const auto het = bench::run_app(app, het_cfg);
      gains[deep] = 1.0 - static_cast<double>(het.cycles.value()) /
                              static_cast<double>(base.cycles.value());
    }
    t.add_row({name, TextTable::pct(gains[0]), TextTable::pct(gains[1])});
    std::fprintf(stderr, "  %s done\n", name);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Expected: the execution-time gain shrinks with the 3-stage router —\n"
              "per-hop latency becomes router-dominated, so halving the wire delay\n"
              "moves a smaller share of the miss path.\n");
  return 0;
}
