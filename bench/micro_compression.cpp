// Micro-benchmarks (google-benchmark): raw throughput of the compression
// state machines — these sit on the NIC's injection path of every simulated
// message, so their speed bounds whole-system simulation rate.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "compression/compressor.hpp"
#include "compression/dbrc.hpp"
#include "compression/stride.hpp"

using namespace tcmp;
using namespace tcmp::compression;

namespace {

void BM_DbrcCompress(benchmark::State& state) {
  DbrcSender sender(static_cast<unsigned>(state.range(0)), 2, 16);
  Rng rng(1);
  for (auto _ : state) {
    const LineAddr line{0x1000000 + rng.next_below(1 << 18)};
    benchmark::DoNotOptimize(
        sender.compress(static_cast<NodeId>(line.value() % 16), line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DbrcCompress)->Arg(4)->Arg(16)->Arg(64);

void BM_StrideCompress(benchmark::State& state) {
  StrideSender sender(2, 16);
  Rng rng(2);
  std::uint64_t addr = 0x1000000;
  for (auto _ : state) {
    addr += rng.next_below(64);
    const LineAddr line{addr};
    benchmark::DoNotOptimize(
        sender.compress(static_cast<NodeId>(line.value() % 16), line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StrideCompress);

void BM_DbrcRoundTrip(benchmark::State& state) {
  auto pair = make_compressor(SchemeConfig::dbrc(16, 2), 16);
  Rng rng(3);
  for (auto _ : state) {
    const LineAddr line{0x2000000 + rng.next_below(1 << 16)};
    const auto dst = static_cast<NodeId>(line.value() % 16);
    const Encoding enc = pair.sender->compress(dst, line);
    benchmark::DoNotOptimize(pair.receiver->decode(NodeId{0}, enc, line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DbrcRoundTrip);

}  // namespace
