// Reproduces Table 2: relative delay, area and power of B-, L- and PW-Wires,
// comparing the published values against our first-order RC + repeater model
// (Eq. 1-4 of the paper).
#include <cstdio>

#include "common/table.hpp"
#include "wire/wire_spec.hpp"

using namespace tcmp;
using wire::WireClass;

int main() {
  std::printf("=== Table 2: wire implementations at 65 nm (model vs paper) ===\n\n");
  TextTable t({"Wire type", "RelLat", "(paper)", "RelArea", "(paper)",
               "Dyn W/m@a=1", "(paper)", "Static W/m", "(paper)", "ps/mm"});
  for (WireClass cls :
       {WireClass::kB8X, WireClass::kB4X, WireClass::kL8X, WireClass::kPW4X}) {
    const wire::WireSpec model = wire::model_spec(cls);
    const wire::WireSpec paper = wire::paper_spec(cls);
    t.add_row({paper.name, TextTable::fmt(model.rel_latency, 2),
               TextTable::fmt(paper.rel_latency, 2), TextTable::fmt(model.rel_area, 1),
               TextTable::fmt(paper.rel_area, 1),
               TextTable::fmt(model.dyn_power.value(), 2),
               TextTable::fmt(paper.dyn_power.value(), 2),
               TextTable::fmt(model.static_power.value(), 3),
               TextTable::fmt(paper.static_power.value(), 3),
               TextTable::fmt(model.ps_per_mm, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Latency ratios reproduce within ~12%%; PW-Wire dynamic power diverges\n"
              "(see EXPERIMENTS.md): a first-order RC model cannot remove wire\n"
              "capacitance, only repeater overheads. The simulator uses the paper\n"
              "columns for energy accounting.\n\n");

  std::printf("Link latency quantization at 4 GHz over a 5 mm link:\n");
  for (WireClass cls :
       {WireClass::kB8X, WireClass::kB4X, WireClass::kL8X, WireClass::kPW4X}) {
    const wire::WireSpec paper = wire::paper_spec(cls);
    std::printf("  %-16s %u cycles\n", paper.name.c_str(),
                paper.link_cycles(5.0, units::hertz(4e9)));
  }
  return 0;
}
