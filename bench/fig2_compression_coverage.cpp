// Reproduces Fig. 2: address compression coverage per application per scheme
// for the 16-core tiled CMP.
//
// Methodology (same spirit as the paper's: one simulation per application,
// all schemes measured on identical traffic): each application runs once on
// the baseline configuration while the remote coherence-message stream
// (source, destination, class, block address) is captured; the stream is then
// replayed through every compression scheme's sender state machines.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "compression/compressor.hpp"
#include "compression/dbrc.hpp"
#include "compression/stride.hpp"

using namespace tcmp;

namespace {

struct TraceEntry {
  NodeId src;
  NodeId dst;
  compression::MsgClass cls;
  LineAddr line;
};

std::vector<TraceEntry> capture_trace(const workloads::AppParams& params) {
  std::vector<TraceEntry> trace;
  auto workload = std::make_shared<workloads::SyntheticApp>(
      params.scaled(bench::workload_scale()), 16);
  cmp::CmpSystem system(cmp::CmpConfig::baseline(), workload);
  system.set_remote_msg_hook([&trace](const protocol::CoherenceMsg& msg) {
    if (!protocol::carries_address(msg.type) || !protocol::is_critical(msg.type))
      return;
    trace.push_back(
        {msg.src, msg.dst, protocol::compression_class(msg.type), msg.line});
  });
  const bool ok = system.run();
  TCMP_CHECK(ok);
  return trace;
}

double coverage_of(const std::vector<TraceEntry>& trace,
                   const compression::SchemeConfig& scheme) {
  // One sender compressor per (core, class), as in the real hardware.
  std::vector<std::unique_ptr<compression::SenderCompressor>> senders(
      16 * compression::kNumMsgClasses);
  for (auto& s : senders) s = compression::make_compressor(scheme, 16).sender;

  std::uint64_t hits = 0;
  for (const auto& e : trace) {
    auto& sender = *senders[e.src * compression::kNumMsgClasses +
                           static_cast<unsigned>(e.cls)];
    if (sender.compress(e.dst, e.line).compressed) ++hits;
  }
  return trace.empty() ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(trace.size());
}

}  // namespace

int main() {
  bench::print_header("Fig. 2: address compression coverage (16-core tiled CMP)");

  const auto schemes = bench::fig2_schemes();
  std::vector<std::string> header{"Application"};
  for (const auto& s : schemes) header.push_back(s.name());
  TextTable t(std::move(header));

  std::vector<double> sums(schemes.size(), 0.0);
  unsigned napps = 0;
  for (const auto& app : workloads::all_apps()) {
    const auto trace = capture_trace(app);
    std::vector<std::string> row{app.name};
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const double cov = coverage_of(trace, schemes[i]);
      sums[i] += cov;
      row.push_back(TextTable::pct(cov, 1));
    }
    t.add_row(std::move(row));
    ++napps;
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (double s : sums) avg.push_back(TextTable::pct(s / napps, 1));
  t.add_row(std::move(avg));

  std::printf("%s\n", t.str().c_str());
  std::printf("Paper shape: 1-byte Stride and 4-entry DBRC (1B) give low coverage;\n"
              "16-entry DBRC (1B), 2-byte Stride and 4-entry DBRC (2B) exceed ~80%%;\n"
              "DBRC (2B) reaches ~98%%; Barnes/Radix are the low outliers.\n");
  return 0;
}
