// Statistical robustness: the headline Fig. 6 improvement re-measured over
// several workload seeds. The synthetic application models are stochastic
// (deterministic per seed); this bench shows the reported gains are stable
// properties of the pattern, not artifacts of one random stream.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header("Robustness: execution-time gain across workload seeds");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  TextTable t({"Application", "mean gain", "stddev", "min", "max", "seeds"});
  for (const char* name : {"MP3D", "FFT", "Barnes", "Water-nsq"}) {
    std::vector<double> gains;
    for (std::uint64_t seed_offset : {0ull, 1000ull, 2000ull, 3000ull}) {
      workloads::AppParams app = workloads::app(name);
      app.seed += seed_offset;
      const auto base = bench::run_app(app, cmp::CmpConfig::baseline());
      const auto het = bench::run_app(app, cmp::CmpConfig::heterogeneous(scheme));
      gains.push_back(1.0 - static_cast<double>(het.cycles.value()) /
                                static_cast<double>(base.cycles.value()));
    }
    double sum = 0, min = 1e9, max = -1e9;
    for (double g : gains) {
      sum += g;
      min = std::min(min, g);
      max = std::max(max, g);
    }
    const double mean = sum / static_cast<double>(gains.size());
    double var = 0;
    for (double g : gains) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gains.size());
    t.add_row({name, TextTable::pct(mean), TextTable::pct(std::sqrt(var)),
               TextTable::pct(min), TextTable::pct(max),
               std::to_string(gains.size())});
    std::fprintf(stderr, "  %s done\n", name);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Expected: per-application standard deviation well under 1%%,\n"
              "i.e. the gain spectrum of Fig. 6 is seed-stable.\n");
  return 0;
}
