// Reproduces Table 3: VL-Wire characteristics for 3/4/5-byte bundle widths,
// plus the area-matched link partitions of Sec. 4.3 (24-40 VL-Wires + 272
// B-Wires inside the original 600-track budget).
#include <cstdio>

#include "common/table.hpp"
#include "wire/link_design.hpp"

using namespace tcmp;

int main() {
  std::printf("=== Table 3: VL-Wire characteristics (model vs paper) ===\n\n");
  TextTable t({"Width", "RelLat", "(paper)", "RelArea", "Dyn W/m", "(paper)",
               "Static W/m", "(paper)", "link cyc"});
  for (unsigned bytes : {3u, 4u, 5u}) {
    const wire::WireSpec model = wire::model_spec(wire::WireClass::kVL, bytes);
    const wire::WireSpec paper = wire::paper_spec(wire::WireClass::kVL, bytes);
    t.add_row({std::to_string(bytes) + " Bytes", TextTable::fmt(model.rel_latency, 2),
               TextTable::fmt(paper.rel_latency, 2), TextTable::fmt(paper.rel_area, 0),
               TextTable::fmt(model.dyn_power.value(), 2),
               TextTable::fmt(paper.dyn_power.value(), 2),
               TextTable::fmt(model.static_power.value(), 3),
               TextTable::fmt(paper.static_power.value(), 3),
               std::to_string(paper.link_cycles(5.0, units::hertz(4e9)))});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Area-matched heterogeneous link partitions (600-track budget):\n\n");
  TextTable p({"VL width", "VL wires", "VL tracks", "B bytes", "B wires",
               "total tracks", "overshoot"});
  for (unsigned bytes : {3u, 4u, 5u}) {
    const wire::LinkPartition part = wire::paper_het_link(bytes);
    p.add_row({std::to_string(bytes) + " B", std::to_string(part.vl_wires),
               TextTable::fmt(part.vl_tracks, 0), std::to_string(part.b_bytes),
               std::to_string(part.b_wires), TextTable::fmt(part.total_tracks, 0),
               TextTable::pct(part.area_overshoot(), 1)});
  }
  std::printf("%s\n", p.str().c_str());
  return 0;
}
