// Shared helpers for the table/figure reproduction benches: the application
// sweep, scheme lists and consistent normalized printing. TCMP_SCALE scales
// every workload's operation count (1.0 = the calibrated default used in
// EXPERIMENTS.md; smaller values give quick smoke runs).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "compression/scheme.hpp"
#include "workloads/app_params.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::bench {

[[nodiscard]] inline double workload_scale() {
  return env_double("TCMP_SCALE", 1.0);
}

/// Run one application under one configuration to completion.
inline cmp::RunResult run_app(const workloads::AppParams& params,
                              const cmp::CmpConfig& cfg) {
  auto workload = std::make_shared<workloads::SyntheticApp>(
      params.scaled(workload_scale()), cfg.n_tiles);
  cmp::CmpSystem system(cfg, workload);
  const bool finished = system.run();
  TCMP_CHECK_MSG(finished, "simulation did not finish");
  cmp::RunResult r = cmp::make_result(system);
  r.workload = params.name;
  return r;
}

/// The compression configurations whose coverage Fig. 2 reports.
[[nodiscard]] inline std::vector<compression::SchemeConfig> fig2_schemes() {
  using compression::SchemeConfig;
  return {SchemeConfig::stride(1),  SchemeConfig::stride(2),
          SchemeConfig::dbrc(4, 1), SchemeConfig::dbrc(4, 2),
          SchemeConfig::dbrc(16, 1), SchemeConfig::dbrc(16, 2),
          SchemeConfig::dbrc(64, 1), SchemeConfig::dbrc(64, 2)};
}

/// The configurations evaluated in Fig. 6/7 (coverage over ~80% in Fig. 2).
[[nodiscard]] inline std::vector<compression::SchemeConfig> fig6_schemes() {
  using compression::SchemeConfig;
  return {SchemeConfig::stride(2),   SchemeConfig::dbrc(4, 2),
          SchemeConfig::dbrc(16, 1), SchemeConfig::dbrc(16, 2),
          SchemeConfig::dbrc(64, 1), SchemeConfig::dbrc(64, 2)};
}

/// The perfect-compression potential lines of Fig. 6 (3/4/5-byte VL).
[[nodiscard]] inline std::vector<compression::SchemeConfig> potential_schemes() {
  using compression::SchemeConfig;
  return {SchemeConfig::perfect(3), SchemeConfig::perfect(4), SchemeConfig::perfect(5)};
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(workload scale %.2f; set TCMP_SCALE to change)\n\n", workload_scale());
}

}  // namespace tcmp::bench
