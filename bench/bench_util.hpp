// Shared helpers for the table/figure reproduction benches: the application
// sweep, scheme lists, consistent normalized printing, and the deterministic
// parallel sweep driver (--jobs N). TCMP_SCALE scales every workload's
// operation count (1.0 = the calibrated default used in EXPERIMENTS.md;
// smaller values give quick smoke runs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cmp/report.hpp"
#include "cmp/system.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "compression/scheme.hpp"
#include "workloads/app_params.hpp"
#include "workloads/synthetic_app.hpp"

namespace tcmp::bench {

[[nodiscard]] inline double workload_scale() {
  return env_double("TCMP_SCALE", 1.0);
}

/// Worker threads for parallel_sweep: `--jobs N` / `--jobs=N` on the
/// command line, else TCMP_JOBS, else 1 (serial).
[[nodiscard]] inline unsigned parse_jobs(int argc, char** argv) {
  long jobs = env_long("TCMP_JOBS", 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::strtol(argv[i + 1], nullptr, 10);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::strtol(argv[i] + 7, nullptr, 10);
    }
  }
  return jobs < 1 ? 1u : static_cast<unsigned>(jobs);
}

/// Deterministic parallel sweep driver (common/parallel.hpp): runs `task(i)`
/// for every i in [0, n) across `jobs` worker threads and returns the
/// results indexed by task, so callers print a merged table whose content is
/// identical at any job count. Each task must be self-contained — build its
/// own CmpSystem (one StatRegistry per run, nothing shared) — which is what
/// makes every interleaving safe without a single lock. Worker progress goes
/// to stderr; nothing is written to stdout here.
template <typename Task>
[[nodiscard]] auto parallel_sweep(std::size_t n, unsigned jobs, Task task)
    -> std::vector<decltype(task(std::size_t{0}))> {
  return tcmp::parallel_sweep(n, jobs, std::move(task), /*progress=*/true);
}

/// Run one application under one configuration to completion.
inline cmp::RunResult run_app(const workloads::AppParams& params,
                              const cmp::CmpConfig& cfg) {
  auto workload = std::make_shared<workloads::SyntheticApp>(
      params.scaled(workload_scale()), cfg.n_tiles);
  cmp::CmpSystem system(cfg, workload);
  const bool finished = system.run();
  TCMP_CHECK_MSG(finished, "simulation did not finish");
  cmp::RunResult r = cmp::make_result(system);
  r.workload = params.name;
  return r;
}

/// The compression configurations whose coverage Fig. 2 reports.
[[nodiscard]] inline std::vector<compression::SchemeConfig> fig2_schemes() {
  using compression::SchemeConfig;
  return {SchemeConfig::stride(1),  SchemeConfig::stride(2),
          SchemeConfig::dbrc(4, 1), SchemeConfig::dbrc(4, 2),
          SchemeConfig::dbrc(16, 1), SchemeConfig::dbrc(16, 2),
          SchemeConfig::dbrc(64, 1), SchemeConfig::dbrc(64, 2)};
}

/// The configurations evaluated in Fig. 6/7 (coverage over ~80% in Fig. 2).
[[nodiscard]] inline std::vector<compression::SchemeConfig> fig6_schemes() {
  using compression::SchemeConfig;
  return {SchemeConfig::stride(2),   SchemeConfig::dbrc(4, 2),
          SchemeConfig::dbrc(16, 1), SchemeConfig::dbrc(16, 2),
          SchemeConfig::dbrc(64, 1), SchemeConfig::dbrc(64, 2)};
}

/// The perfect-compression potential lines of Fig. 6 (3/4/5-byte VL).
[[nodiscard]] inline std::vector<compression::SchemeConfig> potential_schemes() {
  using compression::SchemeConfig;
  return {SchemeConfig::perfect(3), SchemeConfig::perfect(4), SchemeConfig::perfect(5)};
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(workload scale %.2f; set TCMP_SCALE to change)\n\n", workload_scale());
}

}  // namespace tcmp::bench
