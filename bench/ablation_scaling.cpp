// Extension bench: scaling to a 32-tile (8x4 mesh) CMP — the paper's
// conclusion expects the technique to matter more "for next-generation dense
// CMP architectures": longer average hop counts amplify the per-link latency
// advantage of the VL plane and the wire-inventory energy saving.
//
// `--smoke` instead runs the 64- and 256-tile mesh-scaling smoke (the
// partitioned driver lifted the 16-tile assumption, docs/partitioning.md):
// one app per mesh size, baseline config, logging simulated cycles per wall
// second per size. The perf-smoke CI job runs this at small TCMP_SCALE so
// big-mesh assembly, routing and reporting are exercised on every PR.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"

using namespace tcmp;

namespace {

cmp::CmpConfig sized(cmp::CmpConfig cfg, unsigned tiles) {
  cfg.with_tiles(tiles);
  return cfg;
}

int run_scaling_smoke() {
  bench::print_header("Mesh-scaling smoke: 64-tile (8x8) and 256-tile (16x16)");
  TextTable t({"tiles", "mesh", "sim cycles", "instructions", "cycles/sec"});
  for (unsigned tiles : {64u, 256u}) {
    const auto cfg = sized(cmp::CmpConfig::baseline(), tiles);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = bench::run_app(workloads::app("FFT"), cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    char mesh[16];
    std::snprintf(mesh, sizeof mesh, "%ux%u", cfg.mesh_width, cfg.mesh_height);
    t.add_row({std::to_string(tiles), mesh, std::to_string(r.cycles.value()),
               std::to_string(r.instructions),
               TextTable::fmt(static_cast<double>(r.cycles.value()) / secs, 0)});
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_scaling_smoke();
  }
  const unsigned jobs = bench::parse_jobs(argc, argv);
  bench::print_header("Extension: 16-tile (4x4) vs 32-tile (8x4) CMP");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  const std::vector<const char*> names{"MP3D", "Unstructured", "FFT"};
  const std::vector<unsigned> sizes{16u, 32u};

  // Task grid: (app, tiles, base|het), merged in order below.
  struct Task {
    workloads::AppParams app;
    unsigned tiles;
    cmp::CmpConfig cfg;
  };
  std::vector<Task> grid;
  for (const char* name : names) {
    for (unsigned tiles : sizes) {
      grid.push_back({workloads::app(name), tiles,
                      sized(cmp::CmpConfig::baseline(), tiles)});
      grid.push_back({workloads::app(name), tiles,
                      sized(cmp::CmpConfig::heterogeneous(scheme), tiles)});
    }
  }
  const auto results = bench::parallel_sweep(
      grid.size(), jobs,
      [&](std::size_t i) { return bench::run_app(grid[i].app, grid[i].cfg); });

  TextTable t({"Application", "tiles", "exec het/base", "link ED2P het/base",
               "crit latency base", "het"});
  for (std::size_t i = 0; i < grid.size(); i += 2) {
    const auto& base = results[i];
    const auto& het = results[i + 1];
    t.add_row({grid[i].app.name, std::to_string(grid[i].tiles),
               TextTable::fmt(static_cast<double>(het.cycles.value()) /
                                  static_cast<double>(base.cycles.value()), 3),
               TextTable::fmt(het.link_ed2p() / base.link_ed2p(), 3),
               TextTable::fmt(base.avg_critical_latency, 1),
               TextTable::fmt(het.avg_critical_latency, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("With twice the tiles (and ~1.5x the average hop count), the same VL/B\n"
              "partition buys a larger share of the miss path — the trend behind the\n"
              "paper's closing claim about dense CMPs.\n");
  return 0;
}
