// Extension bench: scaling to a 32-tile (8x4 mesh) CMP — the paper's
// conclusion expects the technique to matter more "for next-generation dense
// CMP architectures": longer average hop counts amplify the per-link latency
// advantage of the VL plane and the wire-inventory energy saving.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

namespace {

cmp::CmpConfig sized(cmp::CmpConfig cfg, unsigned tiles) {
  cfg.n_tiles = tiles;
  cfg.mesh_width = tiles <= 16 ? 4 : 8;
  cfg.mesh_height = 4;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  bench::print_header("Extension: 16-tile (4x4) vs 32-tile (8x4) CMP");

  const auto scheme = compression::SchemeConfig::dbrc(4, 2);
  const std::vector<const char*> names{"MP3D", "Unstructured", "FFT"};
  const std::vector<unsigned> sizes{16u, 32u};

  // Task grid: (app, tiles, base|het), merged in order below.
  struct Task {
    workloads::AppParams app;
    unsigned tiles;
    cmp::CmpConfig cfg;
  };
  std::vector<Task> grid;
  for (const char* name : names) {
    for (unsigned tiles : sizes) {
      grid.push_back({workloads::app(name), tiles,
                      sized(cmp::CmpConfig::baseline(), tiles)});
      grid.push_back({workloads::app(name), tiles,
                      sized(cmp::CmpConfig::heterogeneous(scheme), tiles)});
    }
  }
  const auto results = bench::parallel_sweep(
      grid.size(), jobs,
      [&](std::size_t i) { return bench::run_app(grid[i].app, grid[i].cfg); });

  TextTable t({"Application", "tiles", "exec het/base", "link ED2P het/base",
               "crit latency base", "het"});
  for (std::size_t i = 0; i < grid.size(); i += 2) {
    const auto& base = results[i];
    const auto& het = results[i + 1];
    t.add_row({grid[i].app.name, std::to_string(grid[i].tiles),
               TextTable::fmt(static_cast<double>(het.cycles.value()) /
                                  static_cast<double>(base.cycles.value()), 3),
               TextTable::fmt(het.link_ed2p() / base.link_ed2p(), 3),
               TextTable::fmt(base.avg_critical_latency, 1),
               TextTable::fmt(het.avg_critical_latency, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("With twice the tiles (and ~1.5x the average hop count), the same VL/B\n"
              "partition buys a larger share of the miss path — the trend behind the\n"
              "paper's closing claim about dense CMPs.\n");
  return 0;
}
