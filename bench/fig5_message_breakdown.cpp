// Reproduces Fig. 5: breakdown of the messages travelling on the
// interconnection network of the 16-core CMP, grouped as in Fig. 4
// (requests, responses, coherence commands, coherence responses,
// replacements), plus the short/long and critical shares the proposal keys
// on ("more than 50% of the messages are short messages containing address
// block information that can be compressed").
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

namespace {

struct Shares {
  double requests = 0, responses = 0, commands = 0, coh_replies = 0, replacements = 0;
  double short_with_addr = 0, critical = 0, long_msgs = 0;
};

Shares breakdown(const cmp::RunResult& r) {
  using protocol::MsgType;
  auto count = [&](std::initializer_list<MsgType> types) {
    std::uint64_t n = 0;
    for (MsgType t : types) {
      auto it = r.msg_counts.find(protocol::to_string(t));
      if (it != r.msg_counts.end()) n += it->second;
    }
    return static_cast<double>(n);
  };
  const double total = [&] {
    double t = 0;
    for (const auto& [name, n] : r.msg_counts) t += static_cast<double>(n);
    return t;
  }();

  Shares s;
  s.requests = count({MsgType::kGetS, MsgType::kGetX, MsgType::kUpgrade}) / total;
  s.responses =
      count({MsgType::kData, MsgType::kDataExcl, MsgType::kUpgradeAck}) / total;
  s.commands =
      count({MsgType::kInv, MsgType::kFwdGetS, MsgType::kFwdGetX, MsgType::kRecall}) /
      total;
  s.coh_replies = count({MsgType::kInvAck, MsgType::kRevision, MsgType::kAckRevision,
                         MsgType::kPutAck}) /
                  total;
  s.replacements = count({MsgType::kPutE, MsgType::kPutM}) / total;

  double short_addr = 0, critical = 0, longm = 0;
  for (const auto& [name, n] : r.msg_counts) {
    for (unsigned i = 0; i < protocol::kNumMsgTypes; ++i) {
      const auto t = static_cast<MsgType>(i);
      if (name != protocol::to_string(t)) continue;
      const auto d = static_cast<double>(n);
      if (protocol::is_short(t) && protocol::carries_address(t)) short_addr += d;
      if (protocol::is_critical(t)) critical += d;
      if (!protocol::is_short(t)) longm += d;
    }
  }
  s.short_with_addr = short_addr / total;
  s.critical = critical / total;
  s.long_msgs = longm / total;
  return s;
}

}  // namespace

int main() {
  bench::print_header("Fig. 5: message-type breakdown on the interconnect (baseline)");

  TextTable t({"Application", "Requests", "Responses", "CohCmds", "CohReplies",
               "Replacemts", "Short+LineAddr", "Critical", "Long"});
  Shares avg;
  unsigned n = 0;
  for (const auto& app : workloads::all_apps()) {
    const auto r = bench::run_app(app, cmp::CmpConfig::baseline());
    const Shares s = breakdown(r);
    t.add_row({app.name, TextTable::pct(s.requests), TextTable::pct(s.responses),
               TextTable::pct(s.commands), TextTable::pct(s.coh_replies),
               TextTable::pct(s.replacements), TextTable::pct(s.short_with_addr),
               TextTable::pct(s.critical), TextTable::pct(s.long_msgs)});
    avg.requests += s.requests;
    avg.responses += s.responses;
    avg.commands += s.commands;
    avg.coh_replies += s.coh_replies;
    avg.replacements += s.replacements;
    avg.short_with_addr += s.short_with_addr;
    avg.critical += s.critical;
    avg.long_msgs += s.long_msgs;
    ++n;
  }
  t.add_row({"AVERAGE", TextTable::pct(avg.requests / n), TextTable::pct(avg.responses / n),
             TextTable::pct(avg.commands / n), TextTable::pct(avg.coh_replies / n),
             TextTable::pct(avg.replacements / n), TextTable::pct(avg.short_with_addr / n),
             TextTable::pct(avg.critical / n), TextTable::pct(avg.long_msgs / n)});
  std::printf("%s\n", t.str().c_str());

  // The paper's protocol replaces without acknowledgment; ours PutAcks every
  // replacement (needed by the eviction-buffer race handling). Re-grouping
  // with PutAcks excluded gives the directly comparable Fig. 5 shares.
  std::printf("Comparable to the paper (PutAcks excluded from the total):\n");
  {
    // Averages recomputed from the grouped shares: PutAck count equals the
    // replacement count by construction (one ack per Put).
    const double putacks = avg.replacements / n;
    const double denom = 1.0 - putacks;
    std::printf("  memory access (req+reply): %5.1f%%   (paper: >60%%)\n",
                100.0 * (avg.requests / n + avg.responses / n) / denom);
    std::printf("  coherence enforcement:     %5.1f%%   (paper: ~25%%)\n",
                100.0 * (avg.commands / n + avg.coh_replies / n - putacks) / denom);
    std::printf("  replacements:              %5.1f%%   (paper: ~15%%)\n",
                100.0 * (avg.replacements / n) / denom);
    std::printf("  short with address:        %5.1f%%   (paper: >50%%)\n",
                100.0 * (avg.short_with_addr / n) / denom);
  }
  return 0;
}
