// Reproduces Fig. 6: normalized execution time (top) and normalized link
// ED^2P (bottom) for the compression schemes over heterogeneous links, per
// application, relative to the 75-byte B-Wire baseline. The three
// perfect-compression rows are the solid "potential" lines of the figure.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main() {
  bench::print_header(
      "Fig. 6: normalized execution time (top) and link ED^2P (bottom)");

  const auto schemes = bench::fig6_schemes();
  const auto potentials = bench::potential_schemes();

  std::vector<std::string> header{"Application"};
  for (const auto& s : schemes) header.push_back(s.name());
  for (const auto& s : potentials) header.push_back(s.name());

  TextTable exec_t(header);
  TextTable ed2p_t(header);
  std::vector<double> exec_sum(schemes.size() + potentials.size(), 0.0);
  std::vector<double> ed2p_sum(schemes.size() + potentials.size(), 0.0);
  unsigned napps = 0;

  for (const auto& app : workloads::all_apps()) {
    const auto base = bench::run_app(app, cmp::CmpConfig::baseline());
    std::vector<std::string> exec_row{app.name}, ed2p_row{app.name};
    std::size_t col = 0;
    auto eval = [&](const compression::SchemeConfig& scheme) {
      const auto r = bench::run_app(app, cmp::CmpConfig::heterogeneous(scheme));
      const double nt = static_cast<double>(r.cycles.value()) / static_cast<double>(base.cycles.value());
      const double ne = r.link_ed2p() / base.link_ed2p();
      exec_row.push_back(TextTable::fmt(nt, 3));
      ed2p_row.push_back(TextTable::fmt(ne, 3));
      exec_sum[col] += nt;
      ed2p_sum[col] += ne;
      ++col;
    };
    for (const auto& s : schemes) eval(s);
    for (const auto& s : potentials) eval(s);
    exec_t.add_row(std::move(exec_row));
    ed2p_t.add_row(std::move(ed2p_row));
    ++napps;
    std::fprintf(stderr, "  %s done\n", app.name.c_str());
  }

  std::vector<std::string> exec_avg{"AVERAGE"}, ed2p_avg{"AVERAGE"};
  for (std::size_t i = 0; i < exec_sum.size(); ++i) {
    exec_avg.push_back(TextTable::fmt(exec_sum[i] / napps, 3));
    ed2p_avg.push_back(TextTable::fmt(ed2p_sum[i] / napps, 3));
  }
  exec_t.add_row(std::move(exec_avg));
  ed2p_t.add_row(std::move(ed2p_avg));

  std::printf("--- normalized execution time (lower is better) ---\n%s\n",
              exec_t.str().c_str());
  std::printf("--- normalized link ED^2P (lower is better) ---\n%s\n",
              ed2p_t.str().c_str());
  std::printf(
      "Paper shape: ~8%% average execution-time gain for 4-entry DBRC (2B LO)\n"
      "(potential ~10%%), ranging from 1-2%% (Water, LU) to 22-25%% (MP3D,\n"
      "Unstructured); average link ED^2P reduction ~30-38%%, with Barnes/Radix\n"
      "limited by their low compression coverage.\n");
  return 0;
}
