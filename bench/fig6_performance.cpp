// Reproduces Fig. 6: normalized execution time (top) and normalized link
// ED^2P (bottom) for the compression schemes over heterogeneous links, per
// application, relative to the 75-byte B-Wire baseline. The three
// perfect-compression rows are the solid "potential" lines of the figure.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcmp;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  bench::print_header(
      "Fig. 6: normalized execution time (top) and link ED^2P (bottom)");

  const auto schemes = bench::fig6_schemes();
  const auto potentials = bench::potential_schemes();
  const auto apps = workloads::all_apps();

  std::vector<std::string> header{"Application"};
  for (const auto& s : schemes) header.push_back(s.name());
  for (const auto& s : potentials) header.push_back(s.name());

  // Task grid: per application, the baseline run (column 0) then every
  // scheme/potential run. Results come back indexed by task, so the merged
  // tables below are identical at any --jobs value.
  std::vector<cmp::CmpConfig> cfgs{cmp::CmpConfig::baseline()};
  for (const auto& s : schemes) cfgs.push_back(cmp::CmpConfig::heterogeneous(s));
  for (const auto& s : potentials)
    cfgs.push_back(cmp::CmpConfig::heterogeneous(s));
  const std::size_t n_cfg = cfgs.size();
  const auto results = bench::parallel_sweep(
      apps.size() * n_cfg, jobs, [&](std::size_t i) {
        return bench::run_app(apps[i / n_cfg], cfgs[i % n_cfg]);
      });

  TextTable exec_t(header);
  TextTable ed2p_t(header);
  std::vector<double> exec_sum(schemes.size() + potentials.size(), 0.0);
  std::vector<double> ed2p_sum(schemes.size() + potentials.size(), 0.0);
  unsigned napps = 0;

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto& base = results[a * n_cfg];
    std::vector<std::string> exec_row{apps[a].name}, ed2p_row{apps[a].name};
    for (std::size_t col = 0; col + 1 < n_cfg; ++col) {
      const auto& r = results[a * n_cfg + col + 1];
      const double nt = static_cast<double>(r.cycles.value()) /
                        static_cast<double>(base.cycles.value());
      const double ne = r.link_ed2p() / base.link_ed2p();
      exec_row.push_back(TextTable::fmt(nt, 3));
      ed2p_row.push_back(TextTable::fmt(ne, 3));
      exec_sum[col] += nt;
      ed2p_sum[col] += ne;
    }
    exec_t.add_row(std::move(exec_row));
    ed2p_t.add_row(std::move(ed2p_row));
    ++napps;
  }

  std::vector<std::string> exec_avg{"AVERAGE"}, ed2p_avg{"AVERAGE"};
  for (std::size_t i = 0; i < exec_sum.size(); ++i) {
    exec_avg.push_back(TextTable::fmt(exec_sum[i] / napps, 3));
    ed2p_avg.push_back(TextTable::fmt(ed2p_sum[i] / napps, 3));
  }
  exec_t.add_row(std::move(exec_avg));
  ed2p_t.add_row(std::move(ed2p_avg));

  std::printf("--- normalized execution time (lower is better) ---\n%s\n",
              exec_t.str().c_str());
  std::printf("--- normalized link ED^2P (lower is better) ---\n%s\n",
              ed2p_t.str().c_str());
  std::printf(
      "Paper shape: ~8%% average execution-time gain for 4-entry DBRC (2B LO)\n"
      "(potential ~10%%), ranging from 1-2%% (Water, LU) to 22-25%% (MP3D,\n"
      "Unstructured); average link ED^2P reduction ~30-38%%, with Barnes/Radix\n"
      "limited by their low compression coverage.\n");
  return 0;
}
