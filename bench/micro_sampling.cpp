// Interval-sampling throughput/accuracy microbenchmark (docs/checkpointing.md):
// one long synthetic workload run twice on the same machine — full detail,
// then SMARTS-sampled (functional fast-forward between short detailed
// windows) — comparing wall time and the extrapolated cycle estimate.
//
// Two gates:
//   * throughput: the sampled run must be >= 10x faster in wall time
//     (tolerance-scaled). Both runs execute in the same process on the same
//     host, so the ratio normalizes out runner speed and the committed
//     baseline is portable.
//   * accuracy: the extrapolated cycle estimate's relative error against the
//     full-detail truth. The simulator is deterministic, so at the default
//     scale this error is a *fixed property of the tree* — the gate allows
//     the committed value plus tolerance headroom and a small absolute
//     cushion, so only a genuine sampling-quality regression trips it.
//
// The instruction-stream conservation law (sampled total == full measured
// instructions) is CHECKed on every run — the bench doubles as an end-to-end
// cross-check of the functional/detailed handoff.
//
// Usage:
//   micro_sampling [--json out.json] [--baseline BENCH_sampling.json]
//                  [--tolerance 0.2]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "cmp/sampling.hpp"
#include "cmp/system.hpp"
#include "common/check.hpp"
#include "common/table.hpp"
#include "workloads/synthetic_app.hpp"

using namespace tcmp;

namespace {

constexpr double kSpeedupTarget = 10.0;  ///< acceptance bar (ISSUE 10)

/// Long-workload stand-in, CI-sized: a large per-core op budget with mild
/// sharing, the regime interval sampling exists for. TCMP_SCALE scales it
/// like every other bench workload.
workloads::AppParams long_params() {
  workloads::AppParams p;
  p.name = "sampling-long";
  p.ops_per_core = static_cast<std::uint64_t>(120'000 * bench::workload_scale());
  p.warmup_frac = 0.02;
  p.spatial_locality = 0.9;
  p.line_dwell = 2.0;
  p.private_lines = 512;
  p.shared_frac = 0.15;
  p.compute_per_mem = 2.0;
  return p;
}

cmp::SamplingConfig sampling_spec() {
  // ~5% of the stream in detailed windows (detail is instructions per core).
  // Short windows at a high count beat long sparse ones here: the workload's
  // phase structure makes per-window CPI variance grow with window length
  // (CI95 is the tuning signal), while the per-window handoff bias is held
  // symmetric by measuring at the fence point. warmup=1000 covers the
  // post-fast-forward transient (I-cache refill + MSHR/network re-train).
  cmp::SamplingConfig s;
  s.warmup = Cycle{1'000};
  s.detail = 1'000;
  s.period = 19'000;
  return s;
}

struct Outcome {
  double full_seconds = 0.0;
  double sampled_seconds = 0.0;
  double speedup = 0.0;
  std::uint64_t full_cycles = 0;
  std::uint64_t estimated_cycles = 0;
  double cycle_error = 0.0;  ///< |estimate - truth| / truth
  std::uint64_t windows = 0;
  double cpi_ci95 = 0.0;
};

Outcome run_pair() {
  const auto cfg = cmp::CmpConfig::cheng3way();
  const auto params = long_params();
  Outcome o;

  std::fprintf(stderr, "  running full detail...\n");
  std::uint64_t full_instructions = 0;
  {
    cmp::CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                                   params, cfg.n_tiles));
    const auto t0 = std::chrono::steady_clock::now();
    const bool finished = system.run();
    const auto t1 = std::chrono::steady_clock::now();
    TCMP_CHECK_MSG(finished, "micro_sampling full run did not finish");
    o.full_seconds = std::chrono::duration<double>(t1 - t0).count();
    o.full_cycles = system.cycles().value();
    full_instructions = system.measured_instructions();
  }

  std::fprintf(stderr, "  running sampled...\n");
  {
    cmp::CmpSystem system(cfg, std::make_shared<workloads::SyntheticApp>(
                                   params, cfg.n_tiles));
    cmp::SampledRun sampled(system, sampling_spec());
    const auto t0 = std::chrono::steady_clock::now();
    const bool finished = sampled.run();
    const auto t1 = std::chrono::steady_clock::now();
    TCMP_CHECK_MSG(finished, "micro_sampling sampled run did not finish");
    o.sampled_seconds = std::chrono::duration<double>(t1 - t0).count();
    const cmp::SamplingResult& r = sampled.result();
    TCMP_CHECK_MSG(r.total_instructions == full_instructions,
                   "sampled run lost instructions against the full run "
                   "(functional/detailed handoff bug)");
    o.estimated_cycles = r.estimated_cycles.value();
    o.windows = r.windows;
    o.cpi_ci95 = r.cpi_ci95;
  }

  o.speedup = o.full_seconds / o.sampled_seconds;
  o.cycle_error = std::abs(static_cast<double>(o.estimated_cycles) -
                           static_cast<double>(o.full_cycles)) /
                  static_cast<double>(o.full_cycles);
  return o;
}

std::string to_json(const Outcome& o, unsigned host_cores) {
  std::ostringstream out;
  char buf[640];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"micro_sampling\",\n"
                "  \"host_cores\": %u,\n"
                "  \"full_seconds\": %.3f,\n"
                "  \"sampled_seconds\": %.3f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"full_cycles\": %llu,\n"
                "  \"estimated_cycles\": %llu,\n"
                "  \"cycle_error\": %.5f,\n"
                "  \"windows\": %llu,\n"
                "  \"cpi_ci95\": %.5f\n"
                "}\n",
                host_cores, o.full_seconds, o.sampled_seconds, o.speedup,
                static_cast<unsigned long long>(o.full_cycles),
                static_cast<unsigned long long>(o.estimated_cycles),
                o.cycle_error, static_cast<unsigned long long>(o.windows),
                o.cpi_ci95);
  out << buf;
  return out.str();
}

/// Pull `"key": <num>` out of a baseline JSON written by to_json (flat,
/// known shape — no general JSON parser needed).
bool json_number(const std::string& json, const std::string& key, double* out) {
  const std::string field = "\"" + key + "\": ";
  const auto at = json.find(field);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + field.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path;
  double tolerance = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--baseline base.json] "
                   "[--tolerance 0.2]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("=== micro_sampling: full detail vs SMARTS interval sampling "
              "(host cores: %u, workload scale %.2f) ===\n\n",
              host_cores, bench::workload_scale());

  const Outcome o = run_pair();

  TextTable t({"mode", "wall sec", "cycles"});
  t.add_row({"full detail", TextTable::fmt(o.full_seconds, 2),
             std::to_string(o.full_cycles)});
  t.add_row({"sampled", TextTable::fmt(o.sampled_seconds, 2),
             std::to_string(o.estimated_cycles) + " (est)"});
  std::printf("%s\nspeedup: %.2fx   cycle error: %.2f%%   windows: %llu   "
              "CPI CI95: %.4f\n(instruction-stream conservation verified)\n",
              t.str().c_str(), o.speedup, o.cycle_error * 100.0,
              static_cast<unsigned long long>(o.windows), o.cpi_ci95);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(o, host_cores);
    TCMP_CHECK_MSG(out.good(), "could not write --json output");
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (baseline_path.empty()) return 0;

  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string base = ss.str();

  double base_error = 0.0;
  if (!json_number(base, "cycle_error", &base_error)) {
    std::fprintf(stderr, "baseline missing cycle_error field\n");
    return 2;
  }

  int rc = 0;
  const double speedup_floor = kSpeedupTarget * (1.0 - tolerance);
  if (o.speedup < speedup_floor) {
    std::fprintf(stderr,
                 "FAIL [sampling-speedup]: %.2fx below floor %.2fx "
                 "(target %.0fx, tolerance %.2f)\n",
                 o.speedup, speedup_floor, kSpeedupTarget, tolerance);
    rc = 1;
  } else {
    std::printf("ok [sampling-speedup]: %.2fx >= floor %.2fx\n", o.speedup,
                speedup_floor);
  }

  // Deterministic at fixed scale, so the committed error reproduces exactly;
  // the headroom only keeps legitimate timing-model changes from needing a
  // same-commit baseline refresh.
  const double error_ceiling = base_error * (1.0 + tolerance) + 0.01;
  if (o.cycle_error > error_ceiling) {
    std::fprintf(stderr,
                 "FAIL [sampling-accuracy]: cycle error %.4f above ceiling "
                 "%.4f (baseline %.4f, tolerance %.2f)\n",
                 o.cycle_error, error_ceiling, base_error, tolerance);
    rc = 1;
  } else {
    std::printf("ok [sampling-accuracy]: cycle error %.4f <= ceiling %.4f\n",
                o.cycle_error, error_ceiling);
  }
  return rc;
}
