# Empty compiler generated dependencies file for tcmp_tests.
# This may be replaced when dependencies are built.
