
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_args_and_trace.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_args_and_trace.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_args_and_trace.cpp.o.d"
  "/root/repo/tests/test_cache_array.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_cache_array.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_cache_array.cpp.o.d"
  "/root/repo/tests/test_cmp.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_cmp.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_cmp.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compression.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_compression.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_compression.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_delay_queue.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_delay_queue.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_delay_queue.cpp.o.d"
  "/root/repo/tests/test_het.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_het.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_het.cpp.o.d"
  "/root/repo/tests/test_icache.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_icache.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_icache.cpp.o.d"
  "/root/repo/tests/test_noc.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_noc.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_noc.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_protocol_races.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_protocol_races.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_protocol_races.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/tcmp_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/tcmp_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcmp_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_het.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
