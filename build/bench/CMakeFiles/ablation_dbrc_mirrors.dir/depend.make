# Empty dependencies file for ablation_dbrc_mirrors.
# This may be replaced when dependencies are built.
