file(REMOVE_RECURSE
  "CMakeFiles/ablation_dbrc_mirrors.dir/ablation_dbrc_mirrors.cpp.o"
  "CMakeFiles/ablation_dbrc_mirrors.dir/ablation_dbrc_mirrors.cpp.o.d"
  "ablation_dbrc_mirrors"
  "ablation_dbrc_mirrors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dbrc_mirrors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
