file(REMOVE_RECURSE
  "CMakeFiles/ablation_seed_sensitivity.dir/ablation_seed_sensitivity.cpp.o"
  "CMakeFiles/ablation_seed_sensitivity.dir/ablation_seed_sensitivity.cpp.o.d"
  "ablation_seed_sensitivity"
  "ablation_seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
