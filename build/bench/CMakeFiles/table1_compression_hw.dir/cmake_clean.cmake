file(REMOVE_RECURSE
  "CMakeFiles/table1_compression_hw.dir/table1_compression_hw.cpp.o"
  "CMakeFiles/table1_compression_hw.dir/table1_compression_hw.cpp.o.d"
  "table1_compression_hw"
  "table1_compression_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_compression_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
