# Empty compiler generated dependencies file for ablation_reply_partitioning.
# This may be replaced when dependencies are built.
