file(REMOVE_RECURSE
  "CMakeFiles/ablation_reply_partitioning.dir/ablation_reply_partitioning.cpp.o"
  "CMakeFiles/ablation_reply_partitioning.dir/ablation_reply_partitioning.cpp.o.d"
  "ablation_reply_partitioning"
  "ablation_reply_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reply_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
