# Empty dependencies file for ablation_switching_activity.
# This may be replaced when dependencies are built.
