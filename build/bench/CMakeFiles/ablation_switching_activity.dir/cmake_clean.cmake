file(REMOVE_RECURSE
  "CMakeFiles/ablation_switching_activity.dir/ablation_switching_activity.cpp.o"
  "CMakeFiles/ablation_switching_activity.dir/ablation_switching_activity.cpp.o.d"
  "ablation_switching_activity"
  "ablation_switching_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switching_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
