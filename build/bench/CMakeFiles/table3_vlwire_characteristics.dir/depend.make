# Empty dependencies file for table3_vlwire_characteristics.
# This may be replaced when dependencies are built.
