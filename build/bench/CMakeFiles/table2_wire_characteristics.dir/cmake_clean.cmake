file(REMOVE_RECURSE
  "CMakeFiles/table2_wire_characteristics.dir/table2_wire_characteristics.cpp.o"
  "CMakeFiles/table2_wire_characteristics.dir/table2_wire_characteristics.cpp.o.d"
  "table2_wire_characteristics"
  "table2_wire_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wire_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
