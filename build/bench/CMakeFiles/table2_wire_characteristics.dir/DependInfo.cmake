
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_wire_characteristics.cpp" "bench/CMakeFiles/table2_wire_characteristics.dir/table2_wire_characteristics.cpp.o" "gcc" "bench/CMakeFiles/table2_wire_characteristics.dir/table2_wire_characteristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcmp_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_het.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
