file(REMOVE_RECURSE
  "CMakeFiles/fig2_compression_coverage.dir/fig2_compression_coverage.cpp.o"
  "CMakeFiles/fig2_compression_coverage.dir/fig2_compression_coverage.cpp.o.d"
  "fig2_compression_coverage"
  "fig2_compression_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_compression_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
