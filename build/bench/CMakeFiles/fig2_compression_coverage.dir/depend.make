# Empty dependencies file for fig2_compression_coverage.
# This may be replaced when dependencies are built.
