file(REMOVE_RECURSE
  "CMakeFiles/fig7_full_cmp_ed2p.dir/fig7_full_cmp_ed2p.cpp.o"
  "CMakeFiles/fig7_full_cmp_ed2p.dir/fig7_full_cmp_ed2p.cpp.o.d"
  "fig7_full_cmp_ed2p"
  "fig7_full_cmp_ed2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_full_cmp_ed2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
