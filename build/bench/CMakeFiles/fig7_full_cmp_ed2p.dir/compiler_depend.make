# Empty compiler generated dependencies file for fig7_full_cmp_ed2p.
# This may be replaced when dependencies are built.
