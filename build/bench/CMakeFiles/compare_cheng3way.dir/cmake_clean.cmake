file(REMOVE_RECURSE
  "CMakeFiles/compare_cheng3way.dir/compare_cheng3way.cpp.o"
  "CMakeFiles/compare_cheng3way.dir/compare_cheng3way.cpp.o.d"
  "compare_cheng3way"
  "compare_cheng3way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_cheng3way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
