# Empty dependencies file for compare_cheng3way.
# This may be replaced when dependencies are built.
