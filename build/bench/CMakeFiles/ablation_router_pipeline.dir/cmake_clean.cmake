file(REMOVE_RECURSE
  "CMakeFiles/ablation_router_pipeline.dir/ablation_router_pipeline.cpp.o"
  "CMakeFiles/ablation_router_pipeline.dir/ablation_router_pipeline.cpp.o.d"
  "ablation_router_pipeline"
  "ablation_router_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_router_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
