# Empty compiler generated dependencies file for fig5_message_breakdown.
# This may be replaced when dependencies are built.
