# Empty dependencies file for tcmpsim.
# This may be replaced when dependencies are built.
