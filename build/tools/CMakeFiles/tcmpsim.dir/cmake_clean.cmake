file(REMOVE_RECURSE
  "CMakeFiles/tcmpsim.dir/tcmpsim.cpp.o"
  "CMakeFiles/tcmpsim.dir/tcmpsim.cpp.o.d"
  "tcmpsim"
  "tcmpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
