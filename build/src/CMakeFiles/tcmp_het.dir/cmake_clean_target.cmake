file(REMOVE_RECURSE
  "libtcmp_het.a"
)
