# Empty compiler generated dependencies file for tcmp_het.
# This may be replaced when dependencies are built.
