file(REMOVE_RECURSE
  "CMakeFiles/tcmp_het.dir/het/nic.cpp.o"
  "CMakeFiles/tcmp_het.dir/het/nic.cpp.o.d"
  "CMakeFiles/tcmp_het.dir/het/wire_policy.cpp.o"
  "CMakeFiles/tcmp_het.dir/het/wire_policy.cpp.o.d"
  "libtcmp_het.a"
  "libtcmp_het.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_het.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
