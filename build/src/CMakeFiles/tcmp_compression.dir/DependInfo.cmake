
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/dbrc.cpp" "src/CMakeFiles/tcmp_compression.dir/compression/dbrc.cpp.o" "gcc" "src/CMakeFiles/tcmp_compression.dir/compression/dbrc.cpp.o.d"
  "/root/repo/src/compression/factory.cpp" "src/CMakeFiles/tcmp_compression.dir/compression/factory.cpp.o" "gcc" "src/CMakeFiles/tcmp_compression.dir/compression/factory.cpp.o.d"
  "/root/repo/src/compression/hw_cost.cpp" "src/CMakeFiles/tcmp_compression.dir/compression/hw_cost.cpp.o" "gcc" "src/CMakeFiles/tcmp_compression.dir/compression/hw_cost.cpp.o.d"
  "/root/repo/src/compression/scheme.cpp" "src/CMakeFiles/tcmp_compression.dir/compression/scheme.cpp.o" "gcc" "src/CMakeFiles/tcmp_compression.dir/compression/scheme.cpp.o.d"
  "/root/repo/src/compression/stride.cpp" "src/CMakeFiles/tcmp_compression.dir/compression/stride.cpp.o" "gcc" "src/CMakeFiles/tcmp_compression.dir/compression/stride.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
