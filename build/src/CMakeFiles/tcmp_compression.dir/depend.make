# Empty dependencies file for tcmp_compression.
# This may be replaced when dependencies are built.
