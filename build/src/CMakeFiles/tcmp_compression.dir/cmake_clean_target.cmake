file(REMOVE_RECURSE
  "libtcmp_compression.a"
)
