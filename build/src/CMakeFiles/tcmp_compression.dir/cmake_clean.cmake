file(REMOVE_RECURSE
  "CMakeFiles/tcmp_compression.dir/compression/dbrc.cpp.o"
  "CMakeFiles/tcmp_compression.dir/compression/dbrc.cpp.o.d"
  "CMakeFiles/tcmp_compression.dir/compression/factory.cpp.o"
  "CMakeFiles/tcmp_compression.dir/compression/factory.cpp.o.d"
  "CMakeFiles/tcmp_compression.dir/compression/hw_cost.cpp.o"
  "CMakeFiles/tcmp_compression.dir/compression/hw_cost.cpp.o.d"
  "CMakeFiles/tcmp_compression.dir/compression/scheme.cpp.o"
  "CMakeFiles/tcmp_compression.dir/compression/scheme.cpp.o.d"
  "CMakeFiles/tcmp_compression.dir/compression/stride.cpp.o"
  "CMakeFiles/tcmp_compression.dir/compression/stride.cpp.o.d"
  "libtcmp_compression.a"
  "libtcmp_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
