# Empty compiler generated dependencies file for tcmp_power.
# This may be replaced when dependencies are built.
