file(REMOVE_RECURSE
  "libtcmp_power.a"
)
