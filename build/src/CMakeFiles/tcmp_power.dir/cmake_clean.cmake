file(REMOVE_RECURSE
  "CMakeFiles/tcmp_power.dir/power/cacti_mini.cpp.o"
  "CMakeFiles/tcmp_power.dir/power/cacti_mini.cpp.o.d"
  "CMakeFiles/tcmp_power.dir/power/energy_ledger.cpp.o"
  "CMakeFiles/tcmp_power.dir/power/energy_ledger.cpp.o.d"
  "libtcmp_power.a"
  "libtcmp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
