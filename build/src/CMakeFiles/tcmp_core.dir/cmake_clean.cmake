file(REMOVE_RECURSE
  "CMakeFiles/tcmp_core.dir/core/core_model.cpp.o"
  "CMakeFiles/tcmp_core.dir/core/core_model.cpp.o.d"
  "libtcmp_core.a"
  "libtcmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
