file(REMOVE_RECURSE
  "libtcmp_core.a"
)
