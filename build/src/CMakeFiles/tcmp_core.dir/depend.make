# Empty dependencies file for tcmp_core.
# This may be replaced when dependencies are built.
