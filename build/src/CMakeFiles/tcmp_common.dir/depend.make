# Empty dependencies file for tcmp_common.
# This may be replaced when dependencies are built.
