file(REMOVE_RECURSE
  "libtcmp_common.a"
)
