file(REMOVE_RECURSE
  "CMakeFiles/tcmp_common.dir/common/args.cpp.o"
  "CMakeFiles/tcmp_common.dir/common/args.cpp.o.d"
  "CMakeFiles/tcmp_common.dir/common/log.cpp.o"
  "CMakeFiles/tcmp_common.dir/common/log.cpp.o.d"
  "CMakeFiles/tcmp_common.dir/common/stats.cpp.o"
  "CMakeFiles/tcmp_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/tcmp_common.dir/common/table.cpp.o"
  "CMakeFiles/tcmp_common.dir/common/table.cpp.o.d"
  "libtcmp_common.a"
  "libtcmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
