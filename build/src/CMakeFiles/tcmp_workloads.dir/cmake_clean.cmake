file(REMOVE_RECURSE
  "CMakeFiles/tcmp_workloads.dir/workloads/apps.cpp.o"
  "CMakeFiles/tcmp_workloads.dir/workloads/apps.cpp.o.d"
  "CMakeFiles/tcmp_workloads.dir/workloads/synthetic_app.cpp.o"
  "CMakeFiles/tcmp_workloads.dir/workloads/synthetic_app.cpp.o.d"
  "CMakeFiles/tcmp_workloads.dir/workloads/trace_workload.cpp.o"
  "CMakeFiles/tcmp_workloads.dir/workloads/trace_workload.cpp.o.d"
  "libtcmp_workloads.a"
  "libtcmp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
