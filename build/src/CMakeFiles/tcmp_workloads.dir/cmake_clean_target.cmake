file(REMOVE_RECURSE
  "libtcmp_workloads.a"
)
