# Empty compiler generated dependencies file for tcmp_workloads.
# This may be replaced when dependencies are built.
