
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cpp" "src/CMakeFiles/tcmp_workloads.dir/workloads/apps.cpp.o" "gcc" "src/CMakeFiles/tcmp_workloads.dir/workloads/apps.cpp.o.d"
  "/root/repo/src/workloads/synthetic_app.cpp" "src/CMakeFiles/tcmp_workloads.dir/workloads/synthetic_app.cpp.o" "gcc" "src/CMakeFiles/tcmp_workloads.dir/workloads/synthetic_app.cpp.o.d"
  "/root/repo/src/workloads/trace_workload.cpp" "src/CMakeFiles/tcmp_workloads.dir/workloads/trace_workload.cpp.o" "gcc" "src/CMakeFiles/tcmp_workloads.dir/workloads/trace_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcmp_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
