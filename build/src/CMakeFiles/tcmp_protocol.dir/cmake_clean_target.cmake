file(REMOVE_RECURSE
  "libtcmp_protocol.a"
)
