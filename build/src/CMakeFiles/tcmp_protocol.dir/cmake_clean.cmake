file(REMOVE_RECURSE
  "CMakeFiles/tcmp_protocol.dir/protocol/coherence_msg.cpp.o"
  "CMakeFiles/tcmp_protocol.dir/protocol/coherence_msg.cpp.o.d"
  "CMakeFiles/tcmp_protocol.dir/protocol/directory.cpp.o"
  "CMakeFiles/tcmp_protocol.dir/protocol/directory.cpp.o.d"
  "CMakeFiles/tcmp_protocol.dir/protocol/icache.cpp.o"
  "CMakeFiles/tcmp_protocol.dir/protocol/icache.cpp.o.d"
  "CMakeFiles/tcmp_protocol.dir/protocol/l1_cache.cpp.o"
  "CMakeFiles/tcmp_protocol.dir/protocol/l1_cache.cpp.o.d"
  "libtcmp_protocol.a"
  "libtcmp_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
