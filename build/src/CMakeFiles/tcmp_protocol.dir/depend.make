# Empty dependencies file for tcmp_protocol.
# This may be replaced when dependencies are built.
