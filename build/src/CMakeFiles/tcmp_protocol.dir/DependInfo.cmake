
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/coherence_msg.cpp" "src/CMakeFiles/tcmp_protocol.dir/protocol/coherence_msg.cpp.o" "gcc" "src/CMakeFiles/tcmp_protocol.dir/protocol/coherence_msg.cpp.o.d"
  "/root/repo/src/protocol/directory.cpp" "src/CMakeFiles/tcmp_protocol.dir/protocol/directory.cpp.o" "gcc" "src/CMakeFiles/tcmp_protocol.dir/protocol/directory.cpp.o.d"
  "/root/repo/src/protocol/icache.cpp" "src/CMakeFiles/tcmp_protocol.dir/protocol/icache.cpp.o" "gcc" "src/CMakeFiles/tcmp_protocol.dir/protocol/icache.cpp.o.d"
  "/root/repo/src/protocol/l1_cache.cpp" "src/CMakeFiles/tcmp_protocol.dir/protocol/l1_cache.cpp.o" "gcc" "src/CMakeFiles/tcmp_protocol.dir/protocol/l1_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
