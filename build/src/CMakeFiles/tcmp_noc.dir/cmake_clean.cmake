file(REMOVE_RECURSE
  "CMakeFiles/tcmp_noc.dir/noc/channel.cpp.o"
  "CMakeFiles/tcmp_noc.dir/noc/channel.cpp.o.d"
  "CMakeFiles/tcmp_noc.dir/noc/network.cpp.o"
  "CMakeFiles/tcmp_noc.dir/noc/network.cpp.o.d"
  "CMakeFiles/tcmp_noc.dir/noc/router.cpp.o"
  "CMakeFiles/tcmp_noc.dir/noc/router.cpp.o.d"
  "libtcmp_noc.a"
  "libtcmp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
