# Empty compiler generated dependencies file for tcmp_noc.
# This may be replaced when dependencies are built.
