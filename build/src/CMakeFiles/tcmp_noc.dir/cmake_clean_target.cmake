file(REMOVE_RECURSE
  "libtcmp_noc.a"
)
