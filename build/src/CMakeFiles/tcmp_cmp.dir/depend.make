# Empty dependencies file for tcmp_cmp.
# This may be replaced when dependencies are built.
