file(REMOVE_RECURSE
  "CMakeFiles/tcmp_cmp.dir/cmp/config.cpp.o"
  "CMakeFiles/tcmp_cmp.dir/cmp/config.cpp.o.d"
  "CMakeFiles/tcmp_cmp.dir/cmp/report.cpp.o"
  "CMakeFiles/tcmp_cmp.dir/cmp/report.cpp.o.d"
  "CMakeFiles/tcmp_cmp.dir/cmp/system.cpp.o"
  "CMakeFiles/tcmp_cmp.dir/cmp/system.cpp.o.d"
  "libtcmp_cmp.a"
  "libtcmp_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
