file(REMOVE_RECURSE
  "libtcmp_cmp.a"
)
