src/CMakeFiles/tcmp_wire.dir/wire/technology.cpp.o: \
 /root/repo/src/wire/technology.cpp /usr/include/stdc-predef.h \
 /root/repo/src/wire/technology.hpp
