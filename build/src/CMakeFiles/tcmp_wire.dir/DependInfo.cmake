
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/link_design.cpp" "src/CMakeFiles/tcmp_wire.dir/wire/link_design.cpp.o" "gcc" "src/CMakeFiles/tcmp_wire.dir/wire/link_design.cpp.o.d"
  "/root/repo/src/wire/rc_model.cpp" "src/CMakeFiles/tcmp_wire.dir/wire/rc_model.cpp.o" "gcc" "src/CMakeFiles/tcmp_wire.dir/wire/rc_model.cpp.o.d"
  "/root/repo/src/wire/technology.cpp" "src/CMakeFiles/tcmp_wire.dir/wire/technology.cpp.o" "gcc" "src/CMakeFiles/tcmp_wire.dir/wire/technology.cpp.o.d"
  "/root/repo/src/wire/wire_spec.cpp" "src/CMakeFiles/tcmp_wire.dir/wire/wire_spec.cpp.o" "gcc" "src/CMakeFiles/tcmp_wire.dir/wire/wire_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
