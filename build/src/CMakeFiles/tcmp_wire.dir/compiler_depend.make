# Empty compiler generated dependencies file for tcmp_wire.
# This may be replaced when dependencies are built.
