file(REMOVE_RECURSE
  "libtcmp_wire.a"
)
