file(REMOVE_RECURSE
  "CMakeFiles/tcmp_wire.dir/wire/link_design.cpp.o"
  "CMakeFiles/tcmp_wire.dir/wire/link_design.cpp.o.d"
  "CMakeFiles/tcmp_wire.dir/wire/rc_model.cpp.o"
  "CMakeFiles/tcmp_wire.dir/wire/rc_model.cpp.o.d"
  "CMakeFiles/tcmp_wire.dir/wire/technology.cpp.o"
  "CMakeFiles/tcmp_wire.dir/wire/technology.cpp.o.d"
  "CMakeFiles/tcmp_wire.dir/wire/wire_spec.cpp.o"
  "CMakeFiles/tcmp_wire.dir/wire/wire_spec.cpp.o.d"
  "libtcmp_wire.a"
  "libtcmp_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcmp_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
