file(REMOVE_RECURSE
  "CMakeFiles/example_noc_playground.dir/noc_playground.cpp.o"
  "CMakeFiles/example_noc_playground.dir/noc_playground.cpp.o.d"
  "example_noc_playground"
  "example_noc_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noc_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
