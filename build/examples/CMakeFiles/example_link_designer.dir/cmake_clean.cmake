file(REMOVE_RECURSE
  "CMakeFiles/example_link_designer.dir/link_designer.cpp.o"
  "CMakeFiles/example_link_designer.dir/link_designer.cpp.o.d"
  "example_link_designer"
  "example_link_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_link_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
