# Empty dependencies file for example_link_designer.
# This may be replaced when dependencies are built.
