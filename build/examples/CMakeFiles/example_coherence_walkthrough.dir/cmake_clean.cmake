file(REMOVE_RECURSE
  "CMakeFiles/example_coherence_walkthrough.dir/coherence_walkthrough.cpp.o"
  "CMakeFiles/example_coherence_walkthrough.dir/coherence_walkthrough.cpp.o.d"
  "example_coherence_walkthrough"
  "example_coherence_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_coherence_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
