# Empty compiler generated dependencies file for example_coherence_walkthrough.
# This may be replaced when dependencies are built.
