file(REMOVE_RECURSE
  "CMakeFiles/example_trace_roundtrip.dir/trace_roundtrip.cpp.o"
  "CMakeFiles/example_trace_roundtrip.dir/trace_roundtrip.cpp.o.d"
  "example_trace_roundtrip"
  "example_trace_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
