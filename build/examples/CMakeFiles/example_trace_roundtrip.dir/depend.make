# Empty dependencies file for example_trace_roundtrip.
# This may be replaced when dependencies are built.
