#!/usr/bin/env bash
# Canonical-metrics round-trip test:
#   1. tcmpsim --metrics-out writes a schema-versioned JSON document
#      (with slack telemetry and a self-profile section).
#   2. tcmpstat summarizes it and a self-compare exits 0.
#   3. An injected +50% cycles regression makes the gate exit nonzero.
#   4. A corrupted schema version is rejected (exit 2).
set -u

TCMPSIM=$1
TCMPSTAT=$2
WORKDIR=$3

mkdir -p "$WORKDIR"
cd "$WORKDIR" || exit 1

fail() { echo "tcmpstat_test: $*" >&2; exit 1; }

"$TCMPSIM" --app MP3D --config het --scale 0.05 --obs-level 1 \
    --self-profile --metrics-out base.json > /dev/null \
  || fail "tcmpsim --metrics-out failed"
[ -s base.json ] || fail "metrics file missing or empty"

grep -q '"schema":"tcmp-metrics"' base.json || fail "schema tag missing"
grep -q '"version":1' base.json || fail "schema version missing"
grep -q '"slack"' base.json || fail "slack section missing"
grep -q '"self_profile"' base.json || fail "self_profile section missing"

"$TCMPSTAT" base.json > /dev/null || fail "summary mode failed"

"$TCMPSTAT" --compare base.json base.json --tolerance 0 > /dev/null \
  || fail "self-compare regressed"

# Inject a +50% cycles regression: scale run.cycles up and confirm the gate
# trips at the default 20% tolerance.
CYCLES=$(sed -n 's/.*"cycles":\([0-9]*\).*/\1/p' base.json | head -1)
[ -n "$CYCLES" ] || fail "could not extract cycles"
WORSE=$((CYCLES + CYCLES / 2))
sed "s/\"cycles\":$CYCLES/\"cycles\":$WORSE/" base.json > worse.json
"$TCMPSTAT" --compare base.json worse.json > /dev/null \
  && fail "injected regression was not detected"

# Unsupported schema version must be rejected, not silently compared.
sed 's/"version":1/"version":999/' base.json > future.json
"$TCMPSTAT" future.json > /dev/null 2>&1
[ $? -eq 2 ] || fail "future schema version was not rejected"

echo "tcmpstat_test: OK"
