// tcmplint — repo-specific static analysis for rules generic clang-tidy
// cannot express. Exits nonzero when any rule fires; every finding is
// printed as `path:line: [rule] message` so editors can jump to it.
//
// Rules (select one with --rule, default all):
//   raw-unit          raw double/uint64_t declarations in src/ headers whose
//                     name carries a unit or identity suffix for which a
//                     strong type exists (units.hpp Quantity / types.hpp
//                     tags). Escape hatch: a `tcmplint: allow-raw-unit`
//                     comment on the same line (used at config boundaries
//                     that deliberately keep the paper's mm/raw units).
//   msgtype-tables    every MsgType enumerator must appear in the wire
//                     classification tables (protocol/coherence_msg.cpp) and
//                     the verifier spec table (verify/wire_check.cpp), and
//                     kNumMsgTypes must equal the enumerator count.
//   stat-registration ScalarStat/Histogram constructed as plain members or
//                     locals bypass StatRegistry and never reach reports.
//                     Escape hatch: `tcmplint: allow-local-stat`.
//   stat-string-hot-path string-keyed StatRegistry lookups (`counter("`,
//                     `scalar("`, `histogram("`) outside constructors /
//                     init functions in the hot-path directories
//                     (protocol, noc, het, core, cmp, obs, verify): stats
//                     must be resolved once via the *_ref handles at
//                     construction and bumped through the handle (see the
//                     hot-path contract in common/stats.hpp). Escape
//                     hatch: `tcmplint: allow-stat-string`.
//   obs-emit-interned per-event telemetry emit sites in the hot-path
//                     directories must bump through handles interned at init
//                     time: a `counter_ref("`, `scalar_ref("` or
//                     `histogram_ref("` call with an inline string literal
//                     outside constructors / init functions re-resolves the
//                     name on every event — exactly the map walk the _ref
//                     API exists to avoid. Escape hatch:
//                     `tcmplint: allow-string-emit`.
//   scheduled-contract a header under src/ declaring a per-cycle `tick(Cycle)`
//                     entry point must also declare the sim::Scheduled
//                     contract (`next_event(` and `quiescent(`) — otherwise
//                     the event kernel cannot see the component's work and
//                     dead-cycle skipping would silently drop its ticks.
//                     Escape hatch: `tcmplint: allow-unscheduled-tick` (for
//                     components ticked outside CmpSystem's kernel loop).
//   mutable-static    no non-const static-duration locals / class statics in
//                     src/: a mutable static is shared state every sweep
//                     worker thread can reach, invisible to the per-tile
//                     ownership story partitioning depends on. `static
//                     const`/`static constexpr` (immutable after once-init)
//                     and `static std::atomic<...>` are allowed. Escape
//                     hatch: `tcmplint: allow-mutable-static` (reserved for
//                     mutex-guarded singletons such as the abort-hook
//                     registry).
//   guarded-field     in any class holding a Mutex/std::mutex member, every
//                     sibling data member must carry TCMP_GUARDED_BY(<mu>)
//                     (common/sync.hpp) so Clang's -Wthread-safety can prove
//                     the locking discipline. Escape hatch:
//                     `tcmplint: allow-unguarded-field`.
//   tile-escape       raw pointers/references to tile-owned component types
//                     (L1Cache, ICache, Directory, Core, TileNic) must not
//                     escape outside the sanctioned seams: a type's own
//                     translation unit, the same-tile collaborator edges
//                     (core/ -> L1Cache/ICache), SimKernel registration
//                     (`add_component(`), and constructor wiring. This is
//                     the invariant Graphite-style mesh partitioning
//                     (ROADMAP item 1) depends on: cross-tile interaction
//                     flows through the NIC/message seam, never through a
//                     cached raw pointer. Escape hatch:
//                     `tcmplint: tile-seam` (each use documents a partition
//                     boundary the multi-threaded kernel must cut). In
//                     src/cmp/system.* the partitioned driver
//                     (docs/partitioning.md) already cut every cross-tile
//                     seam, so the reason there must start with "same-tile"
//                     or "single-threaded" — the closed allowed set; any
//                     other reason is reported as a new seam creeping back.
//   nondet-iteration  range-for / iterator loops over unordered_map /
//                     unordered_set anywhere in src/ (the container may be
//                     a class member declared in another TU — resolved via
//                     the cross-TU class model): hash-table iteration order
//                     is not pinned by the language, so such loops must use
//                     an ordered container, sort a snapshot first, or carry
//                     `tcmplint: order-insensitive` with a commutativity
//                     argument.
//   uninit-member     every scalar/pointer/enum data member of a class in
//                     src/ must have a default member initializer or be
//                     covered by every constructor's mem-init list
//                     (constructors defined out-of-line in .cpp included).
//                     Escape hatch: `tcmplint: allow-uninit`.
//   reset-coverage    a class exposing a reset()/zero_all()/clear_values()/
//                     clear_stats() lifecycle method must mention every
//                     data member in that method's body (wherever the body
//                     is defined), reassign `*this`, or annotate the member
//                     `tcmplint: reset-exempt` — the audited inventory a
//                     future snapshot/restore serializer will walk.
//   snapshot-coverage a class participating in checkpoint/restore — one that
//                     defines snapshot_io() or a save()/load() pair — must
//                     mention every data member in those bodies or annotate
//                     the member `tcmplint: snapshot-exempt` with the reason
//                     it is rebuilt rather than serialized. Runtime
//                     attachments (pointers, references, std::function,
//                     stat handles) are skipped automatically: they are
//                     re-wired by the constructor, never serialized.
//   ambient-nondeterminism rand/time/random_device/system_clock/getenv and
//                     friends are banned outside common/rng.hpp,
//                     common/env.hpp and the self-profiler: all randomness
//                     flows through the seeded Rng, all environment reads
//                     through env.hpp. Escape hatch:
//                     `tcmplint: allow-ambient`.
//   self-contained    every header under src/ must compile standalone
//                     ($CXX -std=c++20 -fsyntax-only -I src).
//   pragma-once       every header under src/ must contain #pragma once.
//
// The four determinism/state-integrity rules share a cross-TU class/field
// model (tools/tcmplint_model.hpp): one pass over src/ extracting every
// class/struct with its members (type + initializer), constructor mem-init
// lists and method bodies — including definitions that live in a different
// translation unit than the declaration.
//
// Usage: tcmplint --root <repo-root> [--rule <name>] [--cxx <compiler>]
//        tcmplint --list-rules | tcmplint --dump-model --root <repo-root>
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tcmplint_model.hpp"

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  long line;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void report(const fs::path& file, long line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file.string(), line, rule, message});
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<fs::path> collect(const fs::path& dir, const std::string& ext) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ext)
      out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- raw-unit ------------------------------------------------------------

void check_raw_unit(const fs::path& root) {
  // Unit/identity suffixes for which src/common/{types,units}.hpp provides a
  // strong type. A declaration like `double energy_j` should be
  // `units::Joules energy`, `std::uint64_t start_cycle` should be `Cycle`.
  static const std::regex decl(
      R"((?:double|std::uint64_t|uint64_t)\s+)"
      R"(([a-z][a-z0-9_]*(?:_j|_pj|_nj|_w|_mw|_s|_ps|_ns|_hz|_m|_mm|_um|_mm2|_um2|_per_m|_cycles?|_addr|_line))\s*[;={,)(])");
  for (const auto& h : collect(root / "src", ".hpp")) {
    const std::string rel = fs::relative(h, root).generic_string();
    // The strong-type layer itself defines the raw-double boundary
    // (constructors and to_* escape accessors).
    if (rel == "src/common/units.hpp" || rel == "src/common/types.hpp")
      continue;
    const auto lines = split_lines(read_file(h));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& l = lines[i];
      if (l.find("tcmplint: allow-raw-unit") != std::string::npos) continue;
      std::smatch m;
      if (std::regex_search(l, m, decl)) {
        report(h, static_cast<long>(i + 1), "raw-unit",
               "raw numeric declaration '" + m[1].str() +
                   "' carries a unit/identity suffix; use the strong type "
                   "from common/types.hpp or common/units.hpp (or annotate "
                   "'tcmplint: allow-raw-unit' with a reason)");
      }
    }
  }
}

// ---- msgtype-tables ------------------------------------------------------

void check_msgtype_tables(const fs::path& root) {
  const fs::path enum_hpp = root / "src/protocol/coherence_msg.hpp";
  const std::string text = read_file(enum_hpp);
  if (text.empty()) {
    report(enum_hpp, 0, "msgtype-tables", "cannot read MsgType header");
    return;
  }
  const auto begin = text.find("enum class MsgType");
  const auto end = text.find("};", begin);
  if (begin == std::string::npos || end == std::string::npos) {
    report(enum_hpp, 0, "msgtype-tables", "cannot locate enum class MsgType");
    return;
  }
  std::vector<std::string> enumerators;
  static const std::regex name(R"(^\s*(k[A-Za-z0-9]+)\s*,?)");
  for (const auto& l : split_lines(text.substr(begin, end - begin))) {
    std::smatch m;
    if (std::regex_search(l, m, name)) enumerators.push_back(m[1].str());
  }
  std::smatch count_m;
  static const std::regex count_re(
      R"(constexpr\s+unsigned\s+kNumMsgTypes\s*=\s*(\d+))");
  if (std::regex_search(text, count_m, count_re)) {
    if (std::stoul(count_m[1].str()) != enumerators.size()) {
      report(enum_hpp, 0, "msgtype-tables",
             "kNumMsgTypes = " + count_m[1].str() + " but enum has " +
                 std::to_string(enumerators.size()) + " enumerators");
    }
  } else {
    report(enum_hpp, 0, "msgtype-tables", "kNumMsgTypes constant not found");
  }
  const fs::path tables[] = {root / "src/protocol/coherence_msg.cpp",
                             root / "src/verify/wire_check.cpp"};
  for (const auto& table : tables) {
    const std::string body = read_file(table);
    for (const auto& e : enumerators) {
      // Word-boundary match: MsgType::kX not followed by more identifier.
      const std::regex use("MsgType::" + e + R"(\b)");
      if (!std::regex_search(body, use)) {
        report(table, 0, "msgtype-tables",
               "MsgType::" + e + " missing from this classification table");
      }
    }
  }
}

// ---- stat-registration ---------------------------------------------------

void check_stat_registration(const fs::path& root) {
  // A ScalarStat/Histogram constructed directly (member or local) is never
  // registered with StatRegistry, so it silently vanishes from reports.
  static const std::regex decl(
      R"(^\s*(?:tcmp::)?(ScalarStat|Histogram)\s+([a-zA-Z_]\w*)\s*[{;=(])");
  for (const std::string ext : {".hpp", ".cpp"}) {
    for (const auto& f : collect(root / "src", ext)) {
      const std::string rel = fs::relative(f, root).generic_string();
      if (rel == "src/common/stats.hpp" || rel == "src/common/stats.cpp")
        continue;  // the registry's own storage
      const auto lines = split_lines(read_file(f));
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& l = lines[i];
        if (l.find("tcmplint: allow-local-stat") != std::string::npos) continue;
        std::smatch m;
        if (std::regex_search(l, m, decl)) {
          report(f, static_cast<long>(i + 1), "stat-registration",
                 m[1].str() + " '" + m[2].str() +
                     "' constructed outside StatRegistry — it will never "
                     "appear in reports; register it via StatRegistry (or "
                     "annotate 'tcmplint: allow-local-stat' with a reason)");
        }
      }
    }
  }
}

// ---- stat-string-hot-path ------------------------------------------------

void check_stat_string_hot_path(const fs::path& root) {
  // Per-event string-keyed registry lookups are a map walk plus string
  // compares on every bump; the hot-path contract (common/stats.hpp) is to
  // resolve once via counter_ref/scalar_ref/histogram_ref at construction.
  // The regex cannot match the sanctioned calls: counter_ref(, counter_value(,
  // find_counter( and find_histogram( all put word characters between the
  // keyword and the paren.
  static const std::regex bump(R"(\b(counter|scalar|histogram)\s*\(\s*")");
  // A member function definition: `... ClassName::name(` — the enclosing
  // context for a .cpp bump site.
  static const std::regex member_def(R"(\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\()");
  // An in-class constructor or init method definition: `Name(...)` at
  // declaration position (checked against `class/struct Name` in the file).
  static const std::regex inline_def(
      R"(^\s*(?:explicit\s+)?([A-Za-z_]\w*)\s*\()");
  static const char* kHotDirs[] = {"protocol", "noc",  "het",   "core",
                                   "cmp",      "obs",  "verify"};
  for (const char* dir : kHotDirs) {
    for (const std::string ext : {".hpp", ".cpp"}) {
      for (const auto& f : collect(root / "src" / dir, ext)) {
        const std::string text = read_file(f);
        const auto lines = split_lines(text);
        for (std::size_t i = 0; i < lines.size(); ++i) {
          const std::string& l = lines[i];
          if (l.find("tcmplint: allow-stat-string") != std::string::npos)
            continue;
          std::smatch m;
          if (!std::regex_search(l, m, bump)) continue;
          // Walk back to the nearest function definition to decide whether
          // the call sits in a constructor / init path (one-time resolution
          // is exactly what the contract asks for).
          bool allowed = false;
          for (std::size_t j = i + 1; j-- > 0;) {
            std::smatch d;
            if (std::regex_search(lines[j], d, member_def)) {
              const std::string cls = d[1].str(), fn = d[2].str();
              allowed = cls == fn || fn.find("init") != std::string::npos;
              break;
            }
            if (std::regex_search(lines[j], d, inline_def) &&
                (text.find("class " + d[1].str()) != std::string::npos ||
                 text.find("struct " + d[1].str()) != std::string::npos)) {
              allowed = true;  // in-class constructor definition
              break;
            }
          }
          if (!allowed) {
            report(f, static_cast<long>(i + 1), "stat-string-hot-path",
                   "string-keyed StatRegistry lookup '" + m[1].str() +
                       "(\"...\")' on a hot path — resolve a " + m[1].str() +
                       "_ref handle once at construction and bump through it "
                       "(see the hot-path contract in common/stats.hpp), or "
                       "annotate 'tcmplint: allow-stat-string' with a reason");
          }
        }
      }
    }
  }
}

// ---- obs-emit-interned ---------------------------------------------------

void check_obs_emit_interned(const fs::path& root) {
  // The stat-string-hot-path rule bans `counter("...")` bumps, but a
  // `counter_ref("...")` resolved at the emit site is the same map walk in a
  // handle costume. Interning is only an optimization when it happens once:
  // _ref calls with inline string literals are confined to constructors and
  // init functions, where the handle is cached for the run.
  static const std::regex emit(
      R"(\b(counter_ref|scalar_ref|histogram_ref)\s*\(\s*")");
  // Anchored at column 0: out-of-class definitions start unindented in this
  // codebase, while qualified *calls* (std::move(, protocol::to_string() sit
  // inside indented statements — the anchor keeps them out of the walk.
  static const std::regex member_def(
      R"(^(?=[^\s/]).*?\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\()");
  static const std::regex inline_def(
      R"(^\s*(?:explicit\s+)?([A-Za-z_]\w*)\s*\()");
  static const char* kHotDirs[] = {"protocol", "noc",  "het",   "core",
                                   "cmp",      "obs",  "verify"};
  for (const char* dir : kHotDirs) {
    for (const std::string ext : {".hpp", ".cpp"}) {
      for (const auto& f : collect(root / "src" / dir, ext)) {
        const std::string text = read_file(f);
        const auto lines = split_lines(text);
        for (std::size_t i = 0; i < lines.size(); ++i) {
          const std::string& l = lines[i];
          if (l.find("tcmplint: allow-string-emit") != std::string::npos)
            continue;
          std::smatch m;
          if (!std::regex_search(l, m, emit)) continue;
          bool allowed = false;
          for (std::size_t j = i + 1; j-- > 0;) {
            std::smatch d;
            if (std::regex_search(lines[j], d, member_def)) {
              const std::string cls = d[1].str(), fn = d[2].str();
              allowed = cls == fn || fn.find("init") != std::string::npos;
              break;
            }
            if (std::regex_search(lines[j], d, inline_def) &&
                (text.find("class " + d[1].str()) != std::string::npos ||
                 text.find("struct " + d[1].str()) != std::string::npos)) {
              allowed = true;  // in-class constructor definition
              break;
            }
          }
          if (!allowed) {
            report(f, static_cast<long>(i + 1), "obs-emit-interned",
                   "emit-site handle resolution '" + m[1].str() +
                       "(\"...\")' outside init — intern the handle once at "
                       "construction/init and emit through it (hot-path "
                       "contract, common/stats.hpp), or annotate "
                       "'tcmplint: allow-string-emit' with a reason");
          }
        }
      }
    }
  }
}

// ---- scheduled-contract --------------------------------------------------

void check_scheduled_contract(const fs::path& root) {
  // A component with a per-cycle tick(Cycle) that does not expose
  // next_event()/quiescent() is invisible to SimKernel: dead-cycle skipping
  // would jump over cycles where it had work. The word boundary keeps
  // tick_deliver / sample_tick and friends out of scope — only the bare
  // `tick(Cycle` entry point implies kernel-driven stepping.
  static const std::regex tick_decl(R"(\btick\s*\(\s*(?:tcmp::)?Cycle\b)");
  for (const auto& h : collect(root / "src", ".hpp")) {
    const auto lines = split_lines(read_file(h));
    long tick_line = 0;
    bool has_next_event = false, has_quiescent = false, allowed = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& l = lines[i];
      if (l.find("tcmplint: allow-unscheduled-tick") != std::string::npos)
        allowed = true;
      if (tick_line == 0 && std::regex_search(l, tick_decl))
        tick_line = static_cast<long>(i + 1);
      if (l.find("next_event(") != std::string::npos) has_next_event = true;
      if (l.find("quiescent(") != std::string::npos) has_quiescent = true;
    }
    if (tick_line != 0 && !allowed && !(has_next_event && has_quiescent)) {
      report(h, tick_line, "scheduled-contract",
             "declares tick(Cycle) but not the sim::Scheduled contract "
             "(next_event() + quiescent()); the event kernel would skip this "
             "component's work — implement both (see docs/kernel.md) or "
             "annotate 'tcmplint: allow-unscheduled-tick' with a reason");
    }
  }
}

// ---- mutable-static ------------------------------------------------------

void check_mutable_static(const fs::path& root) {
  // A non-const static-duration object is mutable state shared by every
  // sweep worker thread — exactly what the tile-ownership story (and TSan)
  // must not find. `static const`/`static constexpr` are immutable after a
  // thread-safe once-init; `static std::atomic<...>` is race-free by type.
  // Everything else needs the allow-comment and a mutex-guarded design.
  static const std::regex decl(
      R"(^\s*(?:inline\s+)?static\s+([A-Za-z_][\w:<>,&*\s]*?)\s+\**)"
      R"(([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?(=|\{|;))");
  static const std::regex immutable(R"(\b(const|constexpr)\b)");
  for (const std::string ext : {".hpp", ".cpp"}) {
    for (const auto& f : collect(root / "src", ext)) {
      const auto lines = split_lines(read_file(f));
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& l = lines[i];
        if (l.find("tcmplint: allow-mutable-static") != std::string::npos)
          continue;
        std::smatch m;
        if (!std::regex_search(l, m, decl)) continue;
        const std::string type = m[1].str();
        if (std::regex_search(type, immutable)) continue;
        if (type.find("std::atomic") != std::string::npos) continue;
        report(f, static_cast<long>(i + 1), "mutable-static",
               "mutable static '" + m[2].str() +
                   "' is shared state every sweep thread can reach — make it "
                   "const/constexpr, std::atomic, or a mutex-guarded "
                   "singleton annotated 'tcmplint: allow-mutable-static' "
                   "with a reason");
      }
    }
  }
}

// ---- guarded-field -------------------------------------------------------

// Locate the class body enclosing line `idx` (brace counting, backward for
// the opening '{', forward for the close). Returns false when `idx` is not
// inside braces opened by a struct/class head.
bool enclosing_class_body(const std::vector<std::string>& lines,
                          std::size_t idx, std::size_t& body_begin,
                          std::size_t& body_end) {
  long depth = 0;
  std::size_t open_line = lines.size();
  for (std::size_t j = idx + 1; j-- > 0;) {
    const std::string& l = lines[j];
    for (std::size_t k = l.size(); k-- > 0;) {
      if (l[k] == '}') ++depth;
      if (l[k] == '{') {
        if (depth == 0) {
          open_line = j;
          break;
        }
        --depth;
      }
    }
    if (open_line != lines.size()) break;
  }
  if (open_line == lines.size()) return false;
  // The '{' must belong to a struct/class head (possibly on the line above,
  // for wrapped declarations).
  static const std::regex head(R"(\b(struct|class)\s+[A-Za-z_]\w*)");
  bool is_class = false;
  for (std::size_t j = open_line + 1; j-- > 0 && j + 3 > open_line;) {
    if (std::regex_search(lines[j], head)) {
      is_class = true;
      break;
    }
  }
  if (!is_class) return false;
  body_begin = open_line + 1;
  depth = 1;
  for (std::size_t j = body_begin; j < lines.size(); ++j) {
    // Depth at the *start* of line j decides whether it is a direct member.
    for (const char c : lines[j]) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
    if (depth <= 0) {
      body_end = j;
      return true;
    }
  }
  return false;
}

void check_guarded_field(const fs::path& root) {
  // A class that owns a Mutex has declared "my fields are shared"; every
  // sibling data member must then say which lock protects it, so Clang's
  // -Wthread-safety can reject unlocked access paths. The scan is line-
  // oriented: a member line is one ending in ';' with no '(' (functions and
  // macros excluded) inside the mutex's class body.
  static const std::regex mutex_decl(
      R"(^\s*(?:tcmp::)?(?:Mutex|std::mutex)\s+([A-Za-z_]\w*)\s*(;|\{))");
  static const std::regex member_like(
      R"(^\s*[A-Za-z_][\w:<>,*&\s]*[\s*&]([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)?(=[^=]|\{|;))");
  static const std::regex skip_kw(
      R"(^\s*(using|typedef|friend|static|public:|private:|protected:|struct|class|enum|//|#))");
  for (const std::string ext : {".hpp", ".cpp"}) {
    for (const auto& f : collect(root / "src", ext)) {
      const std::string rel = fs::relative(f, root).generic_string();
      if (rel == "src/common/sync.hpp") continue;  // the wrappers themselves
      const auto lines = split_lines(read_file(f));
      for (std::size_t i = 0; i < lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(lines[i], m, mutex_decl)) continue;
        std::size_t begin = 0, end = 0;
        if (!enclosing_class_body(lines, i, begin, end)) continue;
        long depth = 0;
        for (std::size_t j = begin; j < end; ++j) {
          const std::string& l = lines[j];
          const long line_depth = depth;
          for (const char c : l) {
            if (c == '{') ++depth;
            if (c == '}') --depth;
          }
          if (line_depth != 0 || j == i) continue;  // nested scope / the mutex
          if (l.find("TCMP_GUARDED_BY") != std::string::npos) continue;
          if (l.find("tcmplint: allow-unguarded-field") != std::string::npos)
            continue;
          if (std::regex_search(l, skip_kw)) continue;
          if (l.find('(') != std::string::npos) continue;  // function-ish
          std::smatch fm;
          if (!std::regex_search(l, fm, member_like)) continue;
          report(f, static_cast<long>(j + 1), "guarded-field",
                 "field '" + fm[1].str() + "' shares a class with mutex '" +
                     m[1].str() +
                     "' but carries no TCMP_GUARDED_BY annotation "
                     "(common/sync.hpp) — annotate the lock that protects "
                     "it, or 'tcmplint: allow-unguarded-field' with a "
                     "reason");
        }
      }
    }
  }
}

// ---- tile-escape ---------------------------------------------------------

void check_tile_escape(const fs::path& root) {
  // The invariant Graphite-style partitioning (ROADMAP item 1) will cut
  // along: a tile's components (L1, L1I, directory slice, core, NIC) are
  // owned by that tile, and nothing outside the sanctioned seams may hold a
  // raw pointer/reference into them — cross-tile interaction flows through
  // the NIC/message seam or the SimKernel registration path, both of which
  // become partition boundaries. Two per-TU passes:
  //   (a) declarations of `TileType*` / `TileType&` anywhere in src/;
  //   (b) bindings that materialize a component handle from the tile table
  //       (`= *tiles_[..]->comp`, `x = t->comp.get()` captures).
  // Allowed without annotation: the type's own translation unit, the
  // documented same-tile collaborator edges (core/ -> L1Cache/ICache),
  // `add_component(` registration lines, and constructor wiring (walk-back
  // finds a constructor definition). Everything else must carry
  // `tcmplint: tile-seam (reason)` — the annotated sites are the complete
  // inventory of places the partitioned driver had to turn into messages
  // (it has: see docs/partitioning.md), which is why the reasons in
  // src/cmp/system.* are further held to the closed prefix set below.
  static const std::regex raw_handle(
      R"(\b(L1Cache|ICache|Directory|Core|TileNic)\s*(?:const\s*)?[*&])");
  static const std::regex tile_bind(
      R"(=\s*\*?\s*(?:&\s*)?[A-Za-z_]\w*(?:\[[^\]]*\])?\s*->\s*(l1i?|dir|core|nic)\b\s*(\.get\(\))?\s*[,;)\]}]?)");
  static const std::regex member_def(
      R"(\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\()");
  struct Edge {
    const char* file_substr;  // TU allowed to hold the handle
    const char* type;         // "" = any tile-owned type
  };
  static const Edge kAllowedEdges[] = {
      // A type's own TU.
      {"protocol/l1_cache.", "L1Cache"},
      {"protocol/icache.", "ICache"},
      {"protocol/directory.", "Directory"},
      {"core/core_model.", "Core"},
      {"het/nic.", "TileNic"},
      // Same-tile collaborators, wired once at construction: the core
      // drives its own tile's L1/L1I directly (that pair never crosses a
      // partition boundary).
      {"core/core_model.", "L1Cache"},
      {"core/core_model.", "ICache"},
  };
  // The partitioned driver (docs/partitioning.md) eliminated every
  // cross-tile seam in the CmpSystem driver: delivery, the slack beneficiary
  // probe, and report aggregation now cross partitions via boundary-channel
  // messages and merged stat shards. What legitimately remains in
  // src/cmp/system.* is a closed set — same-tile construction wiring and
  // single-threaded access between partition phases (tests/verify, report
  // and warmup aggregation). The annotation reason there must say which,
  // by prefix; a reason outside the set means a cross-partition seam crept
  // back in and must be routed through the boundary channels instead.
  auto seam_reason_ok = [](const std::string& rel, const std::string& l,
                           std::size_t apos) {
    if (rel.rfind("src/cmp/system.", 0) != 0) return true;
    const auto open = l.find('(', apos);
    if (open == std::string::npos) return false;
    std::string reason = l.substr(open + 1);
    const auto ns = reason.find_first_not_of(" \t");
    if (ns == std::string::npos) return false;
    reason = reason.substr(ns);
    return reason.rfind("same-tile", 0) == 0 ||
           reason.rfind("single-threaded", 0) == 0;
  };
  for (const std::string ext : {".hpp", ".cpp"}) {
    for (const auto& f : collect(root / "src", ext)) {
      const std::string rel = fs::relative(f, root).generic_string();
      const auto lines = split_lines(read_file(f));
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& l = lines[i];
        // The seam annotation may sit on the line itself or the line above
        // (bind sites inside wrapped expressions get long).
        if (const auto apos = l.find("tcmplint: tile-seam");
            apos != std::string::npos) {
          if (!seam_reason_ok(rel, l, apos))
            report(f, static_cast<long>(i + 1), "tile-escape",
                   "tile-seam reason in src/cmp/system.* must start with "
                   "'same-tile' or 'single-threaded' — the partitioned "
                   "driver retired every cross-partition seam there; route "
                   "new cross-partition interaction through the boundary "
                   "channels (docs/partitioning.md)");
          continue;
        }
        if (i > 0 &&
            lines[i - 1].find("tcmplint: tile-seam") != std::string::npos)
          continue;
        if (l.find("add_component(") != std::string::npos) continue;
        std::smatch m;
        std::string what;
        if (std::regex_search(l, m, raw_handle)) {
          bool edge_ok = false;
          for (const Edge& e : kAllowedEdges) {
            if (rel.find(e.file_substr) != std::string::npos &&
                m[1].str() == e.type) {
              edge_ok = true;
              break;
            }
          }
          if (edge_ok) continue;
          what = "raw handle to tile-owned type '" + m[1].str() + "'";
        } else if (std::regex_search(l, m, tile_bind)) {
          what = "binding of per-tile component handle '" + m[1].str() + "'";
        } else {
          continue;
        }
        // Constructor wiring is single-threaded and happens-before the
        // simulation: walk back to the enclosing member definition and
        // allow `X::X(`.
        bool in_ctor = false;
        for (std::size_t j = i + 1; j-- > 0;) {
          std::smatch d;
          if (std::regex_search(lines[j], d, member_def)) {
            in_ctor = d[1].str() == d[2].str();
            break;
          }
        }
        if (in_ctor) continue;
        report(f, static_cast<long>(i + 1), "tile-escape",
               what +
                   " escapes the tile-ownership seams (NIC/message path, "
                   "SimKernel registration, constructor wiring) — route the "
                   "interaction through a message, or annotate "
                   "'tcmplint: tile-seam' with the partition-boundary "
                   "reason (docs/static-analysis.md)");
      }
    }
  }
}

// ---- cross-TU class/field model (tcmplint_model.hpp) ---------------------
//
// The four determinism / state-integrity rules below share one parse of
// src/ into a class model: fields with types and initializers, constructor
// mem-init lists (including out-of-line definitions in .cpp — the cross-TU
// part), and method bodies. Built lazily, once per process.

const tcmplint::Model& class_model(const fs::path& root) {
  static std::map<std::string, tcmplint::Model> cache;
  const std::string key = (root / "src").string();
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, tcmplint::build_model_from_dir(root / "src"))
             .first;
  return it->second;
}

std::string path_stem(const std::string& p) {
  const std::size_t dot = p.rfind('.');
  return dot == std::string::npos ? p : p.substr(0, dot);
}

/// `// tcmplint: <tag>` on the 1-based line or the line above it.
bool annotated_at(const std::vector<std::string>& raw_lines, long line,
                  const std::string& tag) {
  const std::string needle = "tcmplint: " + tag;
  auto has = [&](long l) {
    return l >= 1 && l <= static_cast<long>(raw_lines.size()) &&
           raw_lines[static_cast<std::size_t>(l - 1)].find(needle) !=
               std::string::npos;
  };
  return has(line) || has(line - 1);
}

std::vector<std::string> raw_lines_of(const fs::path& p) {
  return split_lines(read_file(p));
}

// ---- nondet-iteration ----------------------------------------------------

void check_nondet_iteration(const fs::path& root) {
  // Iterating an unordered_map/unordered_set visits elements in hash-table
  // order — a function of libstdc++ internals, insertion history and the
  // hash seed, none of which the golden reports or a future partitioned
  // kernel can pin down. Any loop over an unordered container in src/ must
  // either switch to an ordered container, sort a snapshot before acting on
  // it, or prove the body commutative with an inline
  // `tcmplint: order-insensitive (reason)` annotation. The container may be
  // declared in another TU (a class member in the header, iterated in the
  // .cpp) — that resolution is what the class model is for.
  const tcmplint::Model& model = class_model(root);
  static const std::regex local_decl(
      R"(\bunordered_(?:map|set)\s*<.*>\s*[&*]?\s*([A-Za-z_]\w*)\s*[;,)=({])");
  static const std::regex begin_call(
      R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  static const std::regex ident(R"([A-Za-z_]\w*)");
  for (const std::string ext : {".hpp", ".cpp"}) {
    for (const auto& f : collect(root / "src", ext)) {
      const std::string fname = f.generic_string();
      const std::string stem = path_stem(fname);
      // Names of unordered-typed variables visible in this file: members of
      // classes defined here or in the stem-paired header/source, members
      // of any class with an out-of-line method body in this file, plus
      // local/parameter declarations matched textually below.
      std::set<std::string> unordered_names;
      for (const auto& c : model.classes) {
        bool related = c.file == fname || path_stem(c.file) == stem;
        if (!related)
          for (const auto& b : c.bodies)
            if (b.file == fname) {
              related = true;
              break;
            }
        if (!related) continue;
        for (const auto& fd : c.fields)
          if (fd.type.find("unordered_map") != std::string::npos ||
              fd.type.find("unordered_set") != std::string::npos)
            unordered_names.insert(fd.name);
      }
      const std::string raw = read_file(f);
      const auto raw_lines = split_lines(raw);
      const auto code_lines = split_lines(tcmplint::strip_code(raw));
      for (const auto& l : code_lines) {
        std::smatch m;
        std::string rest = l;
        while (std::regex_search(rest, m, local_decl)) {
          unordered_names.insert(m[1].str());
          rest = m.suffix().str();
        }
      }
      if (unordered_names.empty()) continue;
      for (std::size_t i = 0; i < code_lines.size(); ++i) {
        const long line = static_cast<long>(i + 1);
        if (annotated_at(raw_lines, line, "order-insensitive")) continue;
        // Join a wrapped `for (...)` head (up to 4 continuation lines).
        std::string stmt = code_lines[i];
        const std::size_t for_pos = stmt.find("for");
        for (std::size_t j = i + 1;
             j < code_lines.size() && j < i + 4 &&
             for_pos != std::string::npos &&
             std::count(stmt.begin(), stmt.end(), '(') >
                 std::count(stmt.begin(), stmt.end(), ')');
             ++j)
          stmt += " " + code_lines[j];
        std::smatch m;
        static const std::regex range_for(
            R"(\bfor\s*\(([^;)]*[^:)]):([^:][^)]*)\))");
        if (std::regex_search(stmt, m, range_for)) {
          const std::string range_expr = m[2].str();
          for (auto it = std::sregex_iterator(range_expr.begin(),
                                              range_expr.end(), ident);
               it != std::sregex_iterator(); ++it) {
            if (unordered_names.count(it->str()) != 0U) {
              report(f, line, "nondet-iteration",
                     "range-for over unordered container '" + it->str() +
                         "' — iteration order is not deterministic across "
                         "stdlib implementations; use an ordered container, "
                         "sort a snapshot first, or annotate "
                         "'tcmplint: order-insensitive' with a proof the "
                         "body is commutative");
              break;
            }
          }
        }
        std::string rest = code_lines[i];
        while (std::regex_search(rest, m, begin_call)) {
          if (unordered_names.count(m[1].str()) != 0U) {
            report(f, line, "nondet-iteration",
                   "iterator walk over unordered container '" + m[1].str() +
                       "' — iteration order is not deterministic; use an "
                       "ordered container, sort a snapshot first, or "
                       "annotate 'tcmplint: order-insensitive' with a proof "
                       "the body is commutative");
            break;
          }
          rest = m.suffix().str();
        }
      }
    }
  }
}

// ---- uninit-member -------------------------------------------------------

bool scalar_like_type(const std::string& type,
                      const std::set<std::string>& enum_types) {
  static const std::set<std::string> kScalars = {
      "bool",           "char",          "signed char",  "unsigned char",
      "short",          "unsigned short", "int",          "unsigned",
      "unsigned int",   "long",          "unsigned long", "long long",
      "unsigned long long", "float",     "double",       "long double",
      "size_t",         "std::size_t",   "ptrdiff_t",    "std::ptrdiff_t",
      "std::byte",      "char32_t",      "char16_t",     "wchar_t",
      "int8_t",         "int16_t",       "int32_t",      "int64_t",
      "uint8_t",        "uint16_t",      "uint32_t",     "uint64_t",
      "std::int8_t",    "std::int16_t",  "std::int32_t", "std::int64_t",
      "std::uint8_t",   "std::uint16_t", "std::uint32_t", "std::uint64_t",
      "std::uintptr_t", "std::intptr_t",
  };
  std::string t = type;
  // Qualifiers don't change initialization semantics.
  t = std::regex_replace(t, std::regex(R"(\b(const|mutable|volatile)\b)"), "");
  t = std::regex_replace(t, std::regex(R"(\s+)"), " ");
  while (!t.empty() && (t.front() == ' ')) t.erase(t.begin());
  while (!t.empty() && (t.back() == ' ')) t.pop_back();
  if (!t.empty() && t.back() == '*') return true;  // raw pointer
  if (kScalars.count(t) != 0U) return true;
  if (enum_types.count(t) != 0U) return true;
  // Namespace-qualified enum (`protocol::L1State`).
  const std::size_t sep = t.rfind("::");
  if (sep != std::string::npos &&
      enum_types.count(t.substr(sep + 2)) != 0U &&
      t.compare(0, 5, "std::") != 0)
    return true;
  return false;
}

void check_uninit_member(const fs::path& root) {
  // A scalar/pointer/enum member with neither a default member initializer
  // nor coverage in every constructor's mem-init list is indeterminate
  // until first assignment — reads before that are UB and, worse for this
  // repo, *nondeterministic*: the goldens cannot localize a stack-residue
  // value that happens to differ between hosts. Class-typed members
  // default-construct and are exempt; the strong types (Cycle, LineAddr,
  // Quantity, CounterRef, ...) all zero-initialize themselves.
  const tcmplint::Model& model = class_model(root);
  std::map<std::string, std::vector<std::string>> raw_cache;
  for (const auto& c : model.classes) {
    // Non-deleted constructors; delegating ctors inherit the target's
    // coverage and don't count against a member.
    std::vector<const tcmplint::Ctor*> ctors;
    for (const auto& ct : c.ctors)
      if (!ct.deleted && !ct.delegating) ctors.push_back(&ct);
    for (const auto& fd : c.fields) {
      if (fd.is_static || fd.is_reference || fd.has_init) continue;
      if (!scalar_like_type(fd.type, model.enum_types)) continue;
      bool covered = !ctors.empty();
      for (const auto* ct : ctors)
        if (std::find(ct->inits.begin(), ct->inits.end(), fd.name) ==
            ct->inits.end())
          covered = false;
      if (covered) continue;
      auto rit = raw_cache.find(fd.file);
      if (rit == raw_cache.end())
        rit = raw_cache.emplace(fd.file, raw_lines_of(fd.file)).first;
      if (annotated_at(rit->second, fd.line, "allow-uninit")) continue;
      report(fd.file, fd.line, "uninit-member",
             "member '" + fd.name + "' of " + c.qual + " (type '" + fd.type +
                 "') has no default member initializer and is not covered "
                 "by every constructor's init list — an uninitialized read "
                 "is UB and nondeterministic; add '= ...' / '{}' (or "
                 "annotate 'tcmplint: allow-uninit' with a reason)");
    }
  }
}

// ---- reset-coverage ------------------------------------------------------

void check_reset_coverage(const fs::path& root) {
  // A reset()/zero_all()-style lifecycle method that silently skips a data
  // member leaks state across what callers believe is a clean boundary —
  // and the same member inventory is exactly what a checkpoint/restore
  // serializer (ROADMAP item 4) must walk. Every data member must be
  // mentioned in the method body (the body may live in another TU), be
  // covered by a whole-object `*this = ...;` reassignment, or carry a
  // `tcmplint: reset-exempt (reason)` annotation at its declaration.
  const tcmplint::Model& model = class_model(root);
  static const char* kLifecycle[] = {"reset", "zero_all", "clear_values",
                                     "clear_stats"};
  std::map<std::string, std::vector<std::string>> raw_cache;
  static const std::regex whole_object(R"(\*\s*this\s*=)");
  for (const auto& c : model.classes) {
    for (const char* method : kLifecycle) {
      const auto bodies = c.bodies_of(method);
      if (bodies.empty()) continue;
      bool whole = false;
      for (const auto* b : bodies)
        if (std::regex_search(b->body, whole_object)) whole = true;
      if (whole) continue;
      for (const auto& fd : c.fields) {
        if (fd.is_static) continue;
        const std::regex mention("\\b" + fd.name + "\\b");
        bool mentioned = false;
        for (const auto* b : bodies)
          if (std::regex_search(b->body, mention)) mentioned = true;
        if (mentioned) continue;
        auto rit = raw_cache.find(fd.file);
        if (rit == raw_cache.end())
          rit = raw_cache.emplace(fd.file, raw_lines_of(fd.file)).first;
        if (annotated_at(rit->second, fd.line, "reset-exempt")) continue;
        report(bodies.front()->file, bodies.front()->line, "reset-coverage",
               c.qual + "::" + method + "() does not mention member '" +
                   fd.name + "' (" + fd.file + ":" +
                   std::to_string(fd.line) +
                   ") — reset it, or annotate the member "
                   "'tcmplint: reset-exempt' with the reason it survives");
      }
    }
  }
}

// ---- snapshot-coverage ---------------------------------------------------

void check_snapshot_coverage(const fs::path& root) {
  // The checkpoint/restore mirror of reset-coverage: a class that takes part
  // in snapshotting — it defines snapshot_io() (the archive walker,
  // common/snapshot.hpp) or a save()/load() serializer pair — must account
  // for every data member in those bodies. A member silently skipped by the
  // serializer restores to its constructed value, which desynchronizes the
  // restored run from the uninterrupted one in a way the byte-identity
  // goldens can only localize to "somewhere". Members that are runtime
  // attachments rather than simulation state (raw pointers, references,
  // std::function callbacks, and the StatRegistry handle types, all re-wired
  // by the constructor) are skipped automatically; anything else that
  // legitimately survives restore without serialization must carry a
  // `tcmplint: snapshot-exempt (reason)` annotation at its declaration.
  const tcmplint::Model& model = class_model(root);
  std::map<std::string, std::vector<std::string>> raw_cache;
  static const std::regex attachment_type(
      R"(\*\s*$|std::function|CounterRef|ScalarRef|HistogramRef)");
  for (const auto& c : model.classes) {
    std::vector<const tcmplint::MethodBody*> bodies;
    for (const auto* b : c.bodies_of("snapshot_io")) bodies.push_back(b);
    if (bodies.empty()) {
      const auto saves = c.bodies_of("save");
      const auto loads = c.bodies_of("load");
      if (saves.empty() || loads.empty()) continue;  // not a serializer pair
      bodies.insert(bodies.end(), saves.begin(), saves.end());
      bodies.insert(bodies.end(), loads.begin(), loads.end());
    }
    for (const auto& fd : c.fields) {
      if (fd.is_static || fd.is_reference) continue;
      if (std::regex_search(fd.type, attachment_type)) continue;
      const std::regex mention("\\b" + fd.name + "\\b");
      bool mentioned = false;
      for (const auto* b : bodies)
        if (std::regex_search(b->body, mention)) mentioned = true;
      if (mentioned) continue;
      auto rit = raw_cache.find(fd.file);
      if (rit == raw_cache.end())
        rit = raw_cache.emplace(fd.file, raw_lines_of(fd.file)).first;
      if (annotated_at(rit->second, fd.line, "snapshot-exempt")) continue;
      report(bodies.front()->file, bodies.front()->line, "snapshot-coverage",
             c.qual + "'s snapshot serializer does not mention member '" +
                 fd.name + "' (" + fd.file + ":" + std::to_string(fd.line) +
                 ") — serialize it, or annotate the member "
                 "'tcmplint: snapshot-exempt' with the reason it is rebuilt "
                 "on restore instead");
    }
  }
}

// ---- ambient-nondeterminism ----------------------------------------------

void check_ambient_nondet(const fs::path& root) {
  // The simulator's reproducibility contract: all randomness flows through
  // the seeded tcmp::Rng (common/rng.hpp) and all host-environment reads
  // through common/env.hpp, so a (binary, flags, seed) triple fully
  // determines every report byte. Wall-clock time is allowed only in the
  // self-profiler (sim/profiler.hpp, steady_clock — measurement, never
  // simulation input). Everything else in src/ must not touch ambient
  // entropy: C rand/time, std::random_device, the std engines, system
  // clocks, getenv.
  static const char* kAllowedFiles[] = {
      "src/common/rng.hpp",   // the seeded PRNG itself
      "src/common/env.hpp",   // the sanctioned getenv wrapper
      "src/sim/profiler.hpp", // wall-clock self-profiling (output-only)
  };
  static const std::regex call(
      R"(\b(?:std\s*::\s*)?(rand|srand|rand_r|getenv|time|gettimeofday|clock_gettime|timespec_get)\s*\()");
  static const std::regex type_use(
      R"(\b(random_device|mt19937|mt19937_64|minstd_rand0?|ranlux\w*|system_clock|high_resolution_clock)\b)");
  for (const std::string ext : {".hpp", ".cpp"}) {
    for (const auto& f : collect(root / "src", ext)) {
      const std::string rel = fs::relative(f, root).generic_string();
      if (std::find_if(std::begin(kAllowedFiles), std::end(kAllowedFiles),
                       [&](const char* a) { return rel == a; }) !=
          std::end(kAllowedFiles))
        continue;
      const std::string raw = read_file(f);
      const auto raw_lines = split_lines(raw);
      const auto code_lines = split_lines(tcmplint::strip_code(raw));
      for (std::size_t i = 0; i < code_lines.size(); ++i) {
        const long line = static_cast<long>(i + 1);
        if (annotated_at(raw_lines, line, "allow-ambient")) continue;
        std::smatch m;
        std::string what;
        if (std::regex_search(code_lines[i], m, call))
          what = m[1].str() + "()";
        else if (std::regex_search(code_lines[i], m, type_use))
          what = m[1].str();
        else
          continue;
        report(f, line, "ambient-nondeterminism",
               "ambient entropy source '" + what +
                   "' outside common/rng.hpp / common/env.hpp / the "
                   "profiler — route randomness through the seeded "
                   "tcmp::Rng and environment reads through common/env.hpp "
                   "so runs stay bit-reproducible (or annotate "
                   "'tcmplint: allow-ambient' with a reason)");
      }
    }
  }
}

// ---- self-contained ------------------------------------------------------

void check_self_contained(const fs::path& root, const std::string& cxx) {
  const fs::path tmp = fs::temp_directory_path() / "tcmplint_sc.cpp";
  for (const auto& h : collect(root / "src", ".hpp")) {
    const std::string rel =
        fs::relative(h, root / "src").generic_string();
    {
      std::ofstream out(tmp);
      out << "#include \"" << rel << "\"\n";
    }
    const std::string cmd = cxx + " -std=c++20 -fsyntax-only -I \"" +
                            (root / "src").string() + "\" \"" + tmp.string() +
                            "\" 2>/dev/null";
    if (std::system(cmd.c_str()) != 0) {
      report(h, 0, "self-contained",
             "header does not compile standalone (missing includes?); run: " +
                 cxx + " -std=c++20 -fsyntax-only -I src /tmp/probe.cpp");
    }
  }
  std::error_code ec;
  fs::remove(tmp, ec);
}

// ---- pragma-once ---------------------------------------------------------

void check_pragma_once(const fs::path& root) {
  for (const auto& h : collect(root / "src", ".hpp")) {
    if (read_file(h).find("#pragma once") == std::string::npos)
      report(h, 1, "pragma-once", "header is missing #pragma once");
  }
}

// Single source of truth for the rule set: --list-rules prints exactly this
// table, and tools/run_lint.sh enumerates it — a new rule registered here
// can never be silently skipped by the CI lint job or the seeded harness
// (which cross-checks its coverage against this list).
struct RuleEntry {
  const char* name;
  void (*run)(const fs::path& root, const std::string& cxx);
};

const RuleEntry kRules[] = {
    {"raw-unit", [](const fs::path& r, const std::string&) { check_raw_unit(r); }},
    {"msgtype-tables",
     [](const fs::path& r, const std::string&) { check_msgtype_tables(r); }},
    {"stat-registration",
     [](const fs::path& r, const std::string&) { check_stat_registration(r); }},
    {"stat-string-hot-path",
     [](const fs::path& r, const std::string&) { check_stat_string_hot_path(r); }},
    {"obs-emit-interned",
     [](const fs::path& r, const std::string&) { check_obs_emit_interned(r); }},
    {"scheduled-contract",
     [](const fs::path& r, const std::string&) { check_scheduled_contract(r); }},
    {"mutable-static",
     [](const fs::path& r, const std::string&) { check_mutable_static(r); }},
    {"guarded-field",
     [](const fs::path& r, const std::string&) { check_guarded_field(r); }},
    {"tile-escape",
     [](const fs::path& r, const std::string&) { check_tile_escape(r); }},
    {"nondet-iteration",
     [](const fs::path& r, const std::string&) { check_nondet_iteration(r); }},
    {"uninit-member",
     [](const fs::path& r, const std::string&) { check_uninit_member(r); }},
    {"reset-coverage",
     [](const fs::path& r, const std::string&) { check_reset_coverage(r); }},
    {"snapshot-coverage",
     [](const fs::path& r, const std::string&) { check_snapshot_coverage(r); }},
    {"ambient-nondeterminism",
     [](const fs::path& r, const std::string&) { check_ambient_nondet(r); }},
    {"pragma-once",
     [](const fs::path& r, const std::string&) { check_pragma_once(r); }},
    {"self-contained",
     [](const fs::path& r, const std::string& cxx) { check_self_contained(r, cxx); }},
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string rule = "all";
  bool dump_model = false;
  std::string cxx = std::getenv("CXX") ? std::getenv("CXX") : "c++";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tcmplint: %s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--rule") {
      rule = next();
    } else if (arg == "--cxx") {
      cxx = next();
    } else if (arg == "--list-rules") {
      for (const RuleEntry& r : kRules) std::printf("%s\n", r.name);
      return 0;
    } else if (arg == "--dump-model") {
      dump_model = true;
    } else {
      std::fprintf(stderr,
                   "usage: tcmplint --root <dir> [--rule <name>] "
                   "[--cxx <compiler>] [--dump-model] | "
                   "tcmplint --list-rules\n");
      return 2;
    }
  }
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "tcmplint: no src/ under %s\n", root.string().c_str());
    return 2;
  }
  if (dump_model) {
    // Debug view of the cross-TU class model the determinism rules share.
    for (const auto& c : class_model(root).classes) {
      std::printf("%s (%s:%ld) dir=%s base=%s\n", c.qual.c_str(),
                  c.file.c_str(), c.line, c.dir.c_str(), c.base.c_str());
      for (const auto& f : c.fields)
        std::printf("  field %s : %s%s%s\n", f.name.c_str(), f.type.c_str(),
                    f.has_init ? " [init]" : "", f.is_static ? " [static]" : "");
      for (const auto& ct : c.ctors) {
        std::printf("  ctor %s:%ld inits:", ct.file.c_str(), ct.line);
        for (const auto& n : ct.inits) std::printf(" %s", n.c_str());
        std::printf("%s\n", ct.deleted ? " [deleted]" : "");
      }
      for (const auto& b : c.bodies)
        std::printf("  body %s (%s:%ld)\n", b.name.c_str(), b.file.c_str(),
                    b.line);
    }
    return 0;
  }

  bool known = rule == "all";
  for (const RuleEntry& r : kRules) {
    if (rule == "all" || rule == r.name) {
      r.run(root, cxx);
      known = true;
    }
  }
  if (!known) {
    std::fprintf(stderr, "tcmplint: unknown rule '%s' (see --list-rules)\n",
                 rule.c_str());
    return 2;
  }

  for (const auto& f : g_findings) {
    std::fprintf(stderr, "%s:%ld: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (g_findings.empty()) {
    std::printf("tcmplint: clean (%s)\n", rule.c_str());
    return 0;
  }
  std::fprintf(stderr, "tcmplint: %zu finding(s)\n", g_findings.size());
  return 1;
}
