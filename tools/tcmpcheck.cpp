// tcmpcheck: protocol verification driver. Runs the exhaustive MESI model
// checker on small configurations, the DBRC mirror-consistency bounded check,
// and the wire-size/classification conformance check; with --mutate it plants
// a deliberate protocol bug and succeeds only if the suite catches it.
//
//   tcmpcheck                  full suite (model 2t/1l + 4t/1l + 4t/2l,
//                              wire, DBRC); the 4t/2l stage takes ~2 minutes
//   tcmpcheck --mutate all     every registered mutation must be caught
//   tcmpcheck --mutate dir-skip-last-inv
//   tcmpcheck --tiles 3 --lines 1 --max-msgs 6   custom model run
//
// Exit codes: 0 = clean (or mutation caught), 1 = violation found unmutated
// (or mutation missed), 2 = usage error.
#include <cstdio>
#include <iostream>
#include <set>
#include <string>

#include "common/args.hpp"
#include "verify/checker.hpp"
#include "verify/dbrc_check.hpp"
#include "verify/model.hpp"
#include "verify/mutation.hpp"
#include "verify/wire_check.hpp"

namespace {

using namespace tcmp;

struct Options {
  long tiles = 0;  ///< 0 = run the preset suite instead of one custom config
  long lines = 1;
  long max_msgs = 8;
  long max_outstanding = 4;
  bool evictions = true;
  bool recalls = true;
  long max_states = 20'000'000;
  long progress = 0;
  bool quick = false;
  long dbrc_depth = 6;
  std::string mutate;
};

void print_usage() {
  std::cout <<
      "usage: tcmpcheck [options]\n"
      "\n"
      "Protocol verification suite: exhaustive model check of the directory\n"
      "MESI protocol on small configs, DBRC mirror-consistency bounded check,\n"
      "and wire-size/classification conformance check.\n"
      "\n"
      "  --mutate <name|id|all>  plant a deliberate bug; exit 0 iff caught\n"
      "  --list-mutations        show the mutation registry and exit\n"
      "  --tiles N               check one custom model config (default: the\n"
      "                          preset 2-tile/1-line + 4-tile/2-line suite)\n"
      "  --lines N               lines for the custom config (default 1)\n"
      "  --max-msgs N            in-flight message stimulus bound (default 8)\n"
      "  --max-outstanding N     concurrent open-transaction bound (default 4)\n"
      "  --no-evictions          disable eviction stimuli\n"
      "  --no-recalls            disable directory-recall stimuli\n"
      "  --max-states N          exploration cap (default 20000000)\n"
      "  --progress N            progress line every N states (default off)\n"
          "  --quick                 3t/2l instead of 4t/2l as the multi-line\n"
      "                          stage (seconds instead of minutes; CI)\n"
      "  --dbrc-depth N          DBRC check sequence depth (default 6)\n"
      "  --help                  this text\n";
}

void list_mutations() {
  std::printf("%-3s %-26s %-6s %s\n", "id", "name", "target", "description");
  for (const auto& m : verify::all_mutations()) {
    const char* target = m.target == verify::MutationTarget::kModel ? "model"
                         : m.target == verify::MutationTarget::kDbrc ? "dbrc"
                                                                     : "wire";
    std::printf("%-3u %-26s %-6s %s\n", static_cast<unsigned>(m.id), m.name,
                target, m.description);
  }
}

/// Run one model-check configuration; returns true when the space was
/// exhausted with no violation. Prints the counterexample trace otherwise.
bool run_model(const verify::ProtocolModel::Config& cfg, const Options& opt,
               const char* label) {
  verify::CheckerOptions copts;
  copts.max_states = static_cast<std::uint64_t>(opt.max_states);
  copts.progress_every = static_cast<std::uint64_t>(opt.progress);
  std::printf("model check [%s]: %u tiles, %u lines, <=%u msgs, <=%u open\n",
              label, cfg.n_tiles, cfg.n_lines, cfg.max_msgs,
              cfg.max_outstanding);
  std::fflush(stdout);
  const auto result = verify::run_model_check(cfg, copts);
  if (result.violation.has_value() && !result.truncated) {
    std::printf("  VIOLATION after %llu states / %llu transitions "
                "(depth %u): [%s] %s\n",
                static_cast<unsigned long long>(result.states),
                static_cast<unsigned long long>(result.transitions),
                result.violation_depth, result.violation->invariant.c_str(),
                result.violation->detail.c_str());
    verify::ProtocolModel model(cfg);
    std::cout << format_trace(model, result);
    return false;
  }
  if (result.truncated) {
    std::printf("  TRUNCATED at %llu states — raise --max-states or tighten "
                "the stimulus bounds\n",
                static_cast<unsigned long long>(result.states));
    return false;
  }
  std::printf("  exhausted: %llu states, %llu transitions, 0 violations\n",
              static_cast<unsigned long long>(result.states),
              static_cast<unsigned long long>(result.transitions));
  return true;
}

bool run_wire(verify::MutationId mutation) {
  const auto result = verify::run_wire_check(mutation);
  std::printf("wire check: %llu comparisons, %zu findings\n",
              static_cast<unsigned long long>(result.checks),
              result.findings.size());
  for (const auto& f : result.findings) std::printf("  FINDING: %s\n", f.c_str());
  return result.ok;
}

bool run_dbrc(const Options& opt, verify::MutationId mutation) {
  verify::DbrcCheckConfig cfg;
  cfg.depth = static_cast<unsigned>(opt.dbrc_depth);
  cfg.mutation = mutation;
  const auto result = verify::run_dbrc_check(cfg);
  std::printf("dbrc check: %llu sequences, %llu decodes, %zu findings\n",
              static_cast<unsigned long long>(result.sequences),
              static_cast<unsigned long long>(result.decodes),
              result.findings.size());
  for (const auto& f : result.findings) std::printf("  FINDING: %s\n", f.c_str());
  if (!result.counterexample.empty()) {
    std::printf("  offending send sequence:\n");
    for (const auto& s : result.counterexample)
      std::printf("    %s\n", s.c_str());
  }
  return result.ok;
}

verify::ProtocolModel::Config model_config(const Options& opt, unsigned tiles,
                                           unsigned lines, unsigned max_msgs,
                                           unsigned max_outstanding,
                                           verify::MutationId mutation) {
  verify::ProtocolModel::Config cfg;
  cfg.n_tiles = tiles;
  cfg.n_lines = lines;
  cfg.max_msgs = max_msgs;
  cfg.max_outstanding = max_outstanding;
  cfg.enable_evictions = opt.evictions;
  cfg.enable_recalls = opt.recalls;
  cfg.mutation = mutation;
  return cfg;
}

/// A mutated run is a success when the responsible checker reports the bug.
bool run_mutation(const Options& opt, const verify::MutationInfo& m) {
  std::printf("--- mutation %s (%s) ---\n", m.name, m.description);
  bool caught = false;
  switch (m.target) {
    case verify::MutationTarget::kModel: {
      // Smallest config first; a couple of bugs need a third participant
      // (two sharers besides the requester), so escalate before giving up.
      caught = !run_model(model_config(opt, 2, 1, 6, 3, m.id), opt, "mutated 2t/1l");
      if (!caught) {
        caught =
            !run_model(model_config(opt, 3, 1, 6, 3, m.id), opt, "mutated 3t/1l");
      }
      break;
    }
    case verify::MutationTarget::kDbrc:
      caught = !run_dbrc(opt, m.id);
      break;
    case verify::MutationTarget::kWire:
      caught = !run_wire(m.id);
      break;
  }
  std::printf("mutation %s: %s\n", m.name,
              caught ? "CAUGHT" : "MISSED — the suite has a hole");
  return caught;
}

int run(const Options& opt) {
  if (opt.mutate == "all") {
    unsigned missed = 0;
    for (const auto& m : verify::all_mutations()) {
      if (!run_mutation(opt, m)) ++missed;
    }
    std::printf("=== %zu mutations, %u missed ===\n",
                verify::all_mutations().size(), missed);
    return missed == 0 ? 0 : 1;
  }
  if (!opt.mutate.empty()) {
    const auto m = verify::find_mutation(opt.mutate);
    if (!m.has_value()) {
      std::fprintf(stderr, "tcmpcheck: unknown mutation '%s' (see --list-mutations)\n",
                   opt.mutate.c_str());
      return 2;
    }
    return run_mutation(opt, *m) ? 0 : 1;
  }

  bool ok = true;
  if (opt.tiles != 0) {
    ok = run_model(model_config(opt, static_cast<unsigned>(opt.tiles),
                                static_cast<unsigned>(opt.lines),
                                static_cast<unsigned>(opt.max_msgs),
                                static_cast<unsigned>(opt.max_outstanding),
                                verify::MutationId::kNone),
                   opt, "custom");
  } else {
    // Preset suite. Full stimulus (evictions + recalls) is exhaustible on
    // one line; with two lines the eviction/recall interleavings explode the
    // space past 20M states, so the multi-line stage covers three-party
    // races across two interleaved home tiles with spontaneous
    // evictions/recalls off (the one-line stages already exhaust those).
    ok &= run_model(model_config(opt, 2, 1, static_cast<unsigned>(opt.max_msgs),
                                 static_cast<unsigned>(opt.max_outstanding),
                                 verify::MutationId::kNone),
                    opt, "2t/1l");
    ok &= run_model(model_config(opt, 4, 1, 4, 2, verify::MutationId::kNone),
                    opt, "4t/1l");
    Options no_spont = opt;
    no_spont.evictions = false;
    no_spont.recalls = false;
    if (opt.quick) {
      ok &= run_model(
          model_config(no_spont, 3, 2, 4, 2, verify::MutationId::kNone), opt,
          "3t/2l quick");
    } else {
      ok &= run_model(
          model_config(no_spont, 4, 2, 4, 2, verify::MutationId::kNone), opt,
          "4t/2l");
    }
  }
  ok &= run_wire(verify::MutationId::kNone);
  ok &= run_dbrc(opt, verify::MutationId::kNone);
  std::printf("=== tcmpcheck: %s ===\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "tcmpcheck: %s\n", args.error().c_str());
    return 2;
  }
  static const std::set<std::string> known = {
      "tiles",        "lines",     "max-msgs",   "max-outstanding",
      "no-evictions", "no-recalls", "max-states", "progress",
      "quick",        "dbrc-depth", "mutate",     "list-mutations",
      "help"};
  for (const auto& key : args.unknown_keys(known)) {
    std::fprintf(stderr, "tcmpcheck: unknown option --%s\n", key.c_str());
    return 2;
  }
  if (args.get_flag("help")) {
    print_usage();
    return 0;
  }
  if (args.get_flag("list-mutations")) {
    list_mutations();
    return 0;
  }

  Options opt;
  opt.tiles = args.get_long("tiles", 0);
  opt.lines = args.get_long("lines", 1);
  opt.max_msgs = args.get_long("max-msgs", 8);
  opt.max_outstanding = args.get_long("max-outstanding", 4);
  opt.evictions = !args.get_flag("no-evictions");
  opt.recalls = !args.get_flag("no-recalls");
  opt.max_states = args.get_long("max-states", 20'000'000);
  opt.progress = args.get_long("progress", 0);
  opt.quick = args.get_flag("quick");
  opt.dbrc_depth = args.get_long("dbrc-depth", 6);
  opt.mutate = args.get("mutate", "");
  if (opt.tiles < 0 || opt.lines < 1 || opt.max_msgs < 1 ||
      opt.max_outstanding < 1 || opt.max_states < 1 || opt.dbrc_depth < 1) {
    std::fprintf(stderr, "tcmpcheck: bounds must be positive\n");
    return 2;
  }
  return run(opt);
}
