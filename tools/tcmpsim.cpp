// tcmpsim — command-line driver: run any (workload, configuration) pair and
// print the result as text, CSV or JSON.
//
//   tcmpsim --app MP3D --config het --scheme dbrc --entries 4 --low 2
//   tcmpsim --app all --config baseline --format csv
//   tcmpsim --trace mytrace.txt --config cheng
//
// Options:
//   --app NAME|all        application model (Table 4 names), default MP3D
//   --trace FILE          run a trace file instead of an application model
//   --config KIND         baseline | het | cheng        (default het)
//   --scheme KIND         dbrc | stride | perfect | none (default dbrc)
//   --entries N           DBRC entries (4/16/64, default 4)
//   --low N               low-order bytes (1/2, default 2)
//   --vl N                perfect-compression VL width (3/4/5, default 3)
//   --tiles N             16, 32, 64 or 256 (default 16)
//   --threads N           worker threads for the partitioned driver
//                         (default 1; see docs/partitioning.md)
//   --scale F             workload scale (default 1.0)
//   --reply-partitioning  enable the Reply Partitioning extension
//   --three-stage-router  use the 3-stage router pipeline
//   --format F            text | csv | json (default text)
//
// Long-workload throughput (docs/checkpointing.md):
//   --record FILE         capture the workload's op stream to a compact
//                         binary trace (.tct) as the run consumes it
//                         (requires --threads 1)
//   --replay FILE         run a recorded trace; binary .tct files are
//                         detected by magic, anything else is parsed as the
//                         text trace format (--trace is the text-only alias)
//   --checkpoint-out FILE with --checkpoint-at N: run to cycle N, write a
//                         snapshot, then continue to completion
//   --checkpoint-at N     cycle at which --checkpoint-out snapshots
//   --checkpoint-in FILE  restore a snapshot (same config/workload/threads)
//                         and continue to completion
//   --sample SPEC         SMARTS interval sampling (requires --threads 1, no
//                         observer): SPEC = mode=interval,warmup=W,detail=D,
//                         period=P — detailed windows of D cycles after W
//                         warm cycles, separated by P functionally
//                         fast-forwarded instructions per core; metrics are
//                         extrapolated with a confidence bound
//
// Observability (docs/observability.md):
//   --trace-out FILE      write a Chrome trace-event JSON (load in Perfetto)
//   --timeseries-out FILE write per-window telemetry CSV
//   --metrics-out FILE    write the canonical versioned metrics JSON
//                         (cmp/metrics_export.hpp; tools/tcmpstat reads it)
//   --obs-level N         0=off 1=timeseries 2=trace (default: inferred from
//                         the output options above)
//   --sample-interval N   telemetry window length in cycles (default 10000)
//   --slack-report        print the slack/criticality distribution table
//                         (class x wire realized-slack; implies telemetry)
//   --self-profile        attribute host wall-time per driver section and
//                         kernel phase; prints the table, lands in metrics
//   --postmortem-out FILE arm the crash flight recorder: on a coherence-lint
//                         abort or a TCMP_CHECK failure, dump the recent
//                         per-tile message-lifecycle history to FILE
//
// Verification (docs/verification.md):
//   --verify-interval N   run the coherence lint every N cycles (each tick
//                         checks one of 8 rotating address stripes, so every
//                         line is checked within 8N cycles); a violation
//                         aborts the run with exit code 1
//
// With --app all, per-app output files get a ".<app>" suffix before the
// extension.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <iostream>

#include "cmp/metrics_export.hpp"
#include "cmp/report.hpp"
#include "cmp/sampling.hpp"
#include "cmp/system.hpp"
#include "common/args.hpp"
#include "obs/observer.hpp"
#include "sim/profiler.hpp"
#include "verify/lint.hpp"
#include "workloads/synthetic_app.hpp"
#include "workloads/trace_io.hpp"
#include "workloads/trace_workload.hpp"

using namespace tcmp;

namespace {

struct Options {
  std::string app = "MP3D";
  std::string trace;
  std::string config = "het";
  std::string scheme = "dbrc";
  unsigned entries = 4;
  unsigned low = 2;
  unsigned vl = 3;
  unsigned tiles = 16;
  unsigned threads = 1;
  double scale = 1.0;
  bool reply_partitioning = false;
  bool three_stage_router = false;
  std::string format = "text";
  std::string record;
  std::string replay;
  std::string checkpoint_out;
  std::string checkpoint_in;
  long checkpoint_at = 0;
  std::string sample;
  std::string trace_out;
  std::string timeseries_out;
  std::string metrics_out;
  std::string postmortem_out;
  bool slack_report = false;
  bool self_profile = false;
  long obs_level = -1;  ///< -1 = infer from the output options
  long sample_interval = 10'000;
  long verify_interval = 0;  ///< 0 = coherence lint off
};

/// "out.json" -> "out.MP3D.json" when several apps share one run.
std::string suffixed(const std::string& path, const std::string& app,
                     bool multi) {
  if (!multi || path.empty()) return path;
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + app;
  }
  return path.substr(0, dot) + "." + app + path.substr(dot);
}

obs::ObsConfig make_obs_config(const Options& o, const std::string& app,
                               bool multi) {
  obs::ObsConfig oc;
  if (o.obs_level >= 0) {
    oc.level = static_cast<obs::Level>(o.obs_level);
  } else if (!o.trace_out.empty()) {
    oc.level = obs::Level::kTrace;
  } else {
    oc.level = obs::Level::kTimeseries;
  }
  oc.sample_interval = static_cast<Cycle>(o.sample_interval);
  oc.trace_path = suffixed(o.trace_out, app, multi);
  oc.timeseries_path = suffixed(o.timeseries_out, app, multi);
  return oc;
}

compression::SchemeConfig make_scheme(const Options& o) {
  if (o.scheme == "dbrc") return compression::SchemeConfig::dbrc(o.entries, o.low);
  if (o.scheme == "stride") return compression::SchemeConfig::stride(o.low);
  if (o.scheme == "perfect") return compression::SchemeConfig::perfect(o.vl);
  if (o.scheme == "none") return compression::SchemeConfig::none();
  std::fprintf(stderr, "unknown --scheme '%s'\n", o.scheme.c_str());
  std::exit(2);
}

cmp::CmpConfig make_config(const Options& o) {
  cmp::CmpConfig cfg;
  if (o.config == "baseline") {
    cfg = cmp::CmpConfig::baseline();
  } else if (o.config == "het") {
    cfg = cmp::CmpConfig::heterogeneous(make_scheme(o));
  } else if (o.config == "cheng") {
    cfg = cmp::CmpConfig::cheng3way();
  } else {
    std::fprintf(stderr, "unknown --config '%s'\n", o.config.c_str());
    std::exit(2);
  }
  cfg.with_tiles(o.tiles);
  cfg.threads = o.threads;
  cfg.reply_partitioning = o.reply_partitioning;
  cfg.single_cycle_router = !o.three_stage_router;
  return cfg;
}

void emit(const Options& o, const cmp::RunResult& r, bool header) {
  if (o.format == "csv") {
    if (header) {
      std::printf("workload,configuration,cycles,instructions,remote_msgs,"
                  "coverage,crit_latency,link_energy_j,interconnect_energy_j,"
                  "total_energy_j,link_ed2p,full_ed2p\n");
    }
    std::printf("%s,\"%s\",%llu,%llu,%llu,%.4f,%.2f,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                r.workload.c_str(), r.configuration.c_str(),
                static_cast<unsigned long long>(r.cycles.value()),
                static_cast<unsigned long long>(r.instructions),
                static_cast<unsigned long long>(r.remote_messages),
                r.compression_coverage, r.avg_critical_latency,
                r.link_energy().value(), r.interconnect_energy().value(),
                r.total_energy().value(), r.link_ed2p(), r.full_cmp_ed2p());
    return;
  }
  if (o.format == "json") {
    std::printf("{\"workload\":\"%s\",\"configuration\":\"%s\",\"cycles\":%llu,"
                "\"instructions\":%llu,\"remote_messages\":%llu,"
                "\"coverage\":%.4f,\"critical_latency\":%.2f,"
                "\"link_energy_j\":%.6g,\"interconnect_energy_j\":%.6g,"
                "\"total_energy_j\":%.6g,\"link_ed2p\":%.6g,\"full_ed2p\":%.6g}\n",
                r.workload.c_str(), r.configuration.c_str(),
                static_cast<unsigned long long>(r.cycles.value()),
                static_cast<unsigned long long>(r.instructions),
                static_cast<unsigned long long>(r.remote_messages),
                r.compression_coverage, r.avg_critical_latency,
                r.link_energy().value(), r.interconnect_energy().value(),
                r.total_energy().value(), r.link_ed2p(), r.full_cmp_ed2p());
    return;
  }
  std::printf("%-14s %-40s cycles=%-9llu coverage=%5.1f%% critlat=%5.1f "
              "icE=%.3gJ linkED2P=%.4g\n",
              r.workload.c_str(), r.configuration.c_str(),
              static_cast<unsigned long long>(r.cycles.value()),
              100.0 * r.compression_coverage, r.avg_critical_latency,
              r.interconnect_energy().value(), r.link_ed2p());
}

/// Text-mode network-latency quantile table (per message class and
/// queue/router/wire breakdown).
void emit_latency_table(const cmp::RunResult& r) {
  if (r.latency.empty()) return;
  std::printf("  %-22s %10s %8s %8s %8s %10s\n", "latency [cycles]", "mean",
              "p50", "p95", "p99", "count");
  for (const auto& [name, q] : r.latency) {
    std::printf("  %-22s %10.2f %8.1f %8.1f %8.1f %10llu\n", name.c_str(),
                q.mean, q.p50, q.p95, q.p99,
                static_cast<unsigned long long>(q.count));
  }
}

/// A .tct file is recognized by magic, not extension, so replaying a
/// renamed trace still works.
bool is_binary_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof workloads::kTraceMagic] = {};
  in.read(magic, sizeof magic);
  return in.good() && std::equal(std::begin(magic), std::end(magic),
                                 std::begin(workloads::kTraceMagic));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "argument error: %s\n", args.error().c_str());
    return 2;
  }
  const std::set<std::string> known{
      "app",   "trace", "config",             "scheme",             "entries",
      "low",   "vl",    "tiles",  "threads",  "scale",              "format",
      "help",  "reply-partitioning",          "three-stage-router",
      "trace-out", "timeseries-out", "obs-level", "sample-interval",
      "verify-interval", "metrics-out", "postmortem-out", "slack-report",
      "self-profile", "record", "replay", "checkpoint-out", "checkpoint-at",
      "checkpoint-in", "sample"};
  for (const auto& k : args.unknown_keys(known)) {
    std::fprintf(stderr, "unknown option --%s (see the header of tools/tcmpsim.cpp)\n",
                 k.c_str());
    return 2;
  }
  if (args.get_flag("help")) {
    std::printf("see the header comment of tools/tcmpsim.cpp for usage\n");
    return 0;
  }

  Options o;
  o.app = args.get("app", o.app);
  o.trace = args.get("trace", o.trace);
  o.config = args.get("config", o.config);
  o.scheme = args.get("scheme", o.scheme);
  o.entries = static_cast<unsigned>(args.get_long("entries", o.entries));
  o.low = static_cast<unsigned>(args.get_long("low", o.low));
  o.vl = static_cast<unsigned>(args.get_long("vl", o.vl));
  o.tiles = static_cast<unsigned>(args.get_long("tiles", o.tiles));
  o.threads = static_cast<unsigned>(args.get_long("threads", o.threads));
  o.scale = args.get_double("scale", o.scale);
  if (o.threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }
  o.reply_partitioning = args.get_flag("reply-partitioning");
  o.three_stage_router = args.get_flag("three-stage-router");
  o.format = args.get("format", o.format);
  o.record = args.get("record", o.record);
  o.replay = args.get("replay", o.replay);
  o.checkpoint_out = args.get("checkpoint-out", o.checkpoint_out);
  o.checkpoint_in = args.get("checkpoint-in", o.checkpoint_in);
  o.checkpoint_at = args.get_long("checkpoint-at", o.checkpoint_at);
  o.sample = args.get("sample", o.sample);
  o.trace_out = args.get("trace-out", o.trace_out);
  o.timeseries_out = args.get("timeseries-out", o.timeseries_out);
  o.metrics_out = args.get("metrics-out", o.metrics_out);
  o.postmortem_out = args.get("postmortem-out", o.postmortem_out);
  o.slack_report = args.get_flag("slack-report");
  o.self_profile = args.get_flag("self-profile");
  o.obs_level = args.get_long("obs-level", o.obs_level);
  o.sample_interval = args.get_long("sample-interval", o.sample_interval);
  o.verify_interval = args.get_long("verify-interval", o.verify_interval);
  if (o.verify_interval < 0) {
    std::fprintf(stderr, "--verify-interval must be >= 0\n");
    return 2;
  }
  if (o.obs_level > 2 || o.sample_interval < 1) {
    std::fprintf(stderr, "--obs-level must be 0..2, --sample-interval >= 1\n");
    return 2;
  }
  // An explicit --obs-level below what an output file needs would silently
  // produce no file; reject the contradiction instead.
  if (o.obs_level >= 0 && !o.trace_out.empty() && o.obs_level < 2) {
    std::fprintf(stderr, "--trace-out requires --obs-level 2 (got %ld)\n",
                 o.obs_level);
    return 2;
  }
  if (o.obs_level == 0 && !o.timeseries_out.empty()) {
    std::fprintf(stderr, "--timeseries-out requires --obs-level >= 1\n");
    return 2;
  }

  if (!o.record.empty() && o.threads != 1) {
    std::fprintf(stderr, "--record requires --threads 1\n");
    return 2;
  }
  if (!o.trace.empty() && !o.replay.empty()) {
    std::fprintf(stderr, "--trace and --replay are mutually exclusive\n");
    return 2;
  }
  if (!o.checkpoint_out.empty() && o.checkpoint_at <= 0) {
    std::fprintf(stderr, "--checkpoint-out requires --checkpoint-at N (> 0)\n");
    return 2;
  }
  if (!o.record.empty() &&
      (!o.checkpoint_out.empty() || !o.checkpoint_in.empty())) {
    std::fprintf(stderr,
                 "--record does not compose with checkpointing (the recorder "
                 "has no snapshot of its output file)\n");
    return 2;
  }
  if (!o.sample.empty()) {
    if (o.threads != 1) {
      std::fprintf(stderr, "--sample requires --threads 1\n");
      return 2;
    }
    if (!o.trace_out.empty() || !o.timeseries_out.empty() || o.obs_level > 0 ||
        o.slack_report || o.self_profile) {
      std::fprintf(stderr,
                   "--sample does not support observers "
                   "(--trace-out/--timeseries-out/--obs-level/--slack-report/"
                   "--self-profile)\n");
      return 2;
    }
    if (!o.checkpoint_out.empty()) {
      std::fprintf(stderr, "--sample cannot write checkpoints\n");
      return 2;
    }
  }

  const cmp::CmpConfig cfg = make_config(o);

  std::vector<std::string> apps;
  if (!o.replay.empty()) {
    apps.push_back(o.replay);
  } else if (!o.trace.empty()) {
    apps.push_back(o.trace);
  } else if (o.app == "all") {
    for (const auto& a : workloads::all_apps()) apps.push_back(a.name);
  } else {
    apps.push_back(o.app);
  }

  if (o.slack_report && o.obs_level == 0 && o.threads == 1) {
    std::fprintf(stderr, "--slack-report requires --obs-level >= 1\n");
    return 2;
  }
  // Observers (tracing, time series) are a single-threaded feature; the
  // partitioned driver supports only the sharded slack telemetry and the
  // coherence lint (docs/partitioning.md).
  if (o.threads > 1 && (!o.trace_out.empty() || !o.timeseries_out.empty() ||
                        o.obs_level > 0 || o.self_profile)) {
    std::fprintf(stderr,
                 "--trace-out/--timeseries-out/--obs-level/--self-profile "
                 "require --threads 1\n");
    return 2;
  }
  const bool want_obs = o.threads == 1 &&
                        (!o.trace_out.empty() || !o.timeseries_out.empty() ||
                         o.obs_level > 0 || o.slack_report);
  bool first = true;
  for (const auto& name : apps) {
    std::shared_ptr<core::Workload> workload;
    if (!o.replay.empty() && is_binary_trace(name)) {
      auto bin = std::make_shared<workloads::BinaryTraceWorkload>(name);
      if (bin->n_cores() != cfg.n_tiles) {
        std::fprintf(stderr, "%s: trace was recorded for %u cores, not %u\n",
                     name.c_str(), bin->n_cores(), cfg.n_tiles);
        return 2;
      }
      workload = std::move(bin);
    } else if (!o.trace.empty() || !o.replay.empty()) {
      workload = workloads::TraceWorkload::from_file(name, cfg.n_tiles);
    } else {
      workload = std::make_shared<workloads::SyntheticApp>(
          workloads::app(name).scaled(o.scale), cfg.n_tiles);
    }
    std::shared_ptr<workloads::RecordingWorkload> recorder;
    if (!o.record.empty()) {
      recorder = std::make_shared<workloads::RecordingWorkload>(
          std::move(workload), suffixed(o.record, name, apps.size() > 1),
          cfg.n_tiles);
      workload = recorder;
    }
    cmp::CmpSystem system(cfg, std::move(workload));
    if (!o.checkpoint_in.empty()) {
      std::ifstream cp(o.checkpoint_in, std::ios::binary);
      if (!cp) {
        std::fprintf(stderr, "cannot open checkpoint %s\n",
                     o.checkpoint_in.c_str());
        return 1;
      }
      system.load_checkpoint(cp);
    }
    std::unique_ptr<obs::Observer> observer;
    if (want_obs) {
      observer = std::make_unique<obs::Observer>(
          make_obs_config(o, name, apps.size() > 1), &system.stats());
      system.attach_observer(observer.get());
    }
    if (o.slack_report && o.threads > 1) system.enable_slack_telemetry();
    if (!o.postmortem_out.empty()) {
      system.set_postmortem_path(
          suffixed(o.postmortem_out, name, apps.size() > 1));
    }
    std::unique_ptr<sim::SelfProfiler> profiler;
    if (o.self_profile) {
      profiler = std::make_unique<sim::SelfProfiler>();
      system.set_profiler(profiler.get());
    }
    std::unique_ptr<verify::CoherenceLinter> linter;
    if (o.verify_interval > 0) {
      linter = std::make_unique<verify::CoherenceLinter>(&system,
                                                         observer.get());
      // scan_slice rotates over address stripes: full coverage every
      // CoherenceLinter::kStripes ticks at a fraction of a full scan's cost.
      system.set_periodic_check(
          Cycle{static_cast<std::uint64_t>(o.verify_interval)}, [&linter](Cycle now) {
            const auto violations = linter->scan_slice(now);
            for (const auto& v : violations) {
              std::fprintf(stderr,
                           "coherence lint @ cycle %llu: [%s] line 0x%llx %s\n",
                           static_cast<unsigned long long>(v.cycle.value()),
                           v.invariant.c_str(),
                           static_cast<unsigned long long>(v.line.value()),
                           v.detail.c_str());
            }
            return violations.empty();
          });
    }
    std::unique_ptr<cmp::SampledRun> sampled;
    bool completed;
    if (!o.sample.empty()) {
      sampled = std::make_unique<cmp::SampledRun>(
          system, cmp::SamplingConfig::parse(o.sample));
      completed = sampled->run();
    } else {
      if (!o.checkpoint_out.empty()) {
        system.run(Cycle{static_cast<std::uint64_t>(o.checkpoint_at)});
        if (!system.aborted()) {
          const std::string path =
              suffixed(o.checkpoint_out, name, apps.size() > 1);
          std::ofstream cp(path, std::ios::binary);
          if (cp) system.save_checkpoint(cp);
          if (!cp || !cp.good()) {
            std::fprintf(stderr, "%s: could not write checkpoint to %s\n",
                         name.c_str(), path.c_str());
            return 1;
          }
          std::fprintf(stderr, "%s: checkpoint at cycle %llu written to %s\n",
                       name.c_str(),
                       static_cast<unsigned long long>(
                           system.total_cycles().value()),
                       path.c_str());
        }
      }
      completed = system.run();
    }
    if (recorder) recorder->finish();
    if (!completed) {
      if (system.aborted()) {
        std::fprintf(stderr,
                     "%s: aborted by the coherence lint (%llu violations in "
                     "%llu scans)\n",
                     name.c_str(),
                     static_cast<unsigned long long>(linter->violations()),
                     static_cast<unsigned long long>(linter->scans()));
      } else {
        std::fprintf(stderr, "%s: simulation did not finish\n", name.c_str());
      }
      // Crash-path observability: the lint abort is a clean return (not a
      // TCMP_CHECK), so the abort hooks never fire — flush the partial
      // trace/time-series output and the flight-recorder post-mortem here.
      if (observer) observer->finalize_to_files(system.total_cycles());
      if (system.dump_postmortem()) {
        std::fprintf(stderr, "%s: flight-recorder post-mortem written to %s\n",
                     name.c_str(), system.postmortem_path().c_str());
      }
      return 1;
    }
    if (observer && !observer->finalize_to_files(system.total_cycles())) {
      std::fprintf(stderr, "%s: could not write observability output\n",
                   name.c_str());
      return 1;
    }
    if (recorder) {
      std::fprintf(stderr, "%s: recorded %llu events to %s\n", name.c_str(),
                   static_cast<unsigned long long>(recorder->events_recorded()),
                   suffixed(o.record, name, apps.size() > 1).c_str());
    }
    cmp::RunResult r =
        sampled ? cmp::make_sampled_result(system, *sampled)
                : cmp::make_result(system);
    r.workload = name;
    emit(o, r, first);
    if (o.format == "text") emit_latency_table(r);
    if (sampled && o.format == "text") {
      const cmp::SamplingResult& s = sampled->result();
      std::printf("  sampled: %llu windows, %llu detailed cycles, CPI %.4f "
                  "(window mean %.4f +/- %.4f @95%%), extrapolation x%.1f, "
                  "estimated cycles %llu\n",
                  static_cast<unsigned long long>(s.windows),
                  static_cast<unsigned long long>(s.detailed_cycles.value()),
                  s.cpi, s.cpi_window_mean, s.cpi_ci95, s.extrapolation,
                  static_cast<unsigned long long>(s.estimated_cycles.value()));
    }
    if (o.slack_report) {
      system.write_slack_table(std::cout);
    }
    if (o.self_profile) {
      system.write_self_profile(std::cout);
    }
    if (!o.metrics_out.empty()) {
      const std::string path = suffixed(o.metrics_out, name, apps.size() > 1);
      std::ofstream out(path);
      StatRegistry scaled;
      if (sampled) scaled = sampled->scaled_stats();
      if (out) {
        cmp::write_metrics_json(out, r, system, profiler.get(),
                                sampled ? &sampled->result() : nullptr,
                                sampled ? &scaled : nullptr);
      }
      if (!out || !out.good()) {
        std::fprintf(stderr, "%s: could not write metrics to %s\n",
                     name.c_str(), path.c_str());
        return 1;
      }
    }
    first = false;
  }
  return 0;
}
