// tcmpstat — canonical-metrics inspector and CI trend gate.
//
//   tcmpstat run.json                       summarize one metrics document
//   tcmpstat --compare base.json new.json   diff the key metrics; exit 1 when
//                                           any regresses beyond --tolerance
//
// Options:
//   --tolerance F   relative regression threshold for --compare (default 0.2)
//   --all           with --compare, also diff every counter (informational;
//                   only the key-metric table gates)
//
// Reads the versioned JSON that `tcmpsim --metrics-out` writes
// (cmp/metrics_export.hpp). Documents with an unknown schema name or a newer
// version are rejected (exit 2): the gate must never silently pass on a
// format it does not understand.
//
// Key metrics and their regression direction:
//   run.cycles                 higher is worse   (performance)
//   run.critical_latency       higher is worse
//   run.link_ed2p              higher is worse
//   run.interconnect_energy_j  higher is worse
//   run.total_energy_j         higher is worse
//   run.coverage               LOWER is worse    (compression coverage)
//   counters.msg_remote.count  any change is suspect (determinism guard)
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/json.hpp"

using namespace tcmp;

namespace {

constexpr int kMaxSchemaVersion = 1;

enum class Direction { kHigherWorse, kLowerWorse, kAnyChange };

struct KeyMetric {
  const char* path;
  Direction dir;
};

constexpr KeyMetric kKeyMetrics[] = {
    {"run.cycles", Direction::kHigherWorse},
    {"run.critical_latency", Direction::kHigherWorse},
    {"run.link_ed2p", Direction::kHigherWorse},
    {"run.interconnect_energy_j", Direction::kHigherWorse},
    {"run.total_energy_j", Direction::kHigherWorse},
    {"run.coverage", Direction::kLowerWorse},
    {"counters.msg_remote.count", Direction::kAnyChange},
};

bool load(const std::string& path, json::Value& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "tcmpstat: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  json::ParseResult r = json::parse(ss.str());
  if (!r.ok) {
    std::fprintf(stderr, "tcmpstat: %s: %s\n", path.c_str(), r.error.c_str());
    return false;
  }
  out = std::move(r.value);
  return true;
}

/// Schema gate: name must match, version must be one we understand.
bool validate(const json::Value& doc, const std::string& path) {
  const json::Value* schema = doc.find("schema");
  const json::Value* version = doc.find("version");
  if (schema == nullptr || !schema->is_string() ||
      schema->str != "tcmp-metrics") {
    std::fprintf(stderr, "tcmpstat: %s: not a tcmp-metrics document\n",
                 path.c_str());
    return false;
  }
  if (version == nullptr || !version->is_number() ||
      version->number < 1 || version->number > kMaxSchemaVersion) {
    std::fprintf(stderr,
                 "tcmpstat: %s: unsupported schema version %g (max %d)\n",
                 path.c_str(), version != nullptr ? version->number : 0.0,
                 kMaxSchemaVersion);
    return false;
  }
  return true;
}

double number_at(const json::Value& doc, const std::string& path, bool* found) {
  const json::Value* v = doc.find_path(path);
  *found = v != nullptr && v->is_number();
  return *found ? v->number : 0.0;
}

/// Signed relative change in the WORSE direction: positive means regressed.
double badness(double base, double next, Direction dir) {
  double rel;
  if (base == 0.0) {
    rel = next == 0.0 ? 0.0 : (next > 0 ? HUGE_VAL : -HUGE_VAL);
  } else {
    rel = (next - base) / std::fabs(base);
  }
  switch (dir) {
    case Direction::kHigherWorse: return rel;
    case Direction::kLowerWorse: return -rel;
    case Direction::kAnyChange: return std::fabs(rel);
  }
  return 0.0;
}

void summarize(const json::Value& doc) {
  const json::Value* run = doc.find("run");
  if (run != nullptr && run->is_object()) {
    for (const auto& [k, v] : run->members) {
      if (v.is_string()) {
        std::printf("  %-24s %s\n", k.c_str(), v.str.c_str());
      } else if (v.is_number()) {
        std::printf("  %-24s %.6g\n", k.c_str(), v.number);
      }
    }
  }
  const json::Value* slack = doc.find("slack");
  if (slack != nullptr && slack->is_object() && !slack->members.empty()) {
    std::printf("slack [cycles]:\n  %-28s %8s %8s %8s %8s %10s\n", "class.wire",
                "count", "mean", "p95", "p99", "nonblock");
    for (const auto& [k, v] : slack->members) {
      auto f = [&v](const char* key) {
        const json::Value* x = v.find(key);
        return x != nullptr && x->is_number() ? x->number : 0.0;
      };
      if (f("count") == 0 && f("nonblocking") == 0) continue;
      std::printf("  %-28s %8.0f %8.2f %8.1f %8.1f %10.0f\n", k.c_str(),
                  f("count"), f("mean"), f("p95"), f("p99"), f("nonblocking"));
    }
  }
  const json::Value* prof = doc.find("self_profile");
  if (prof != nullptr && prof->is_object()) {
    const json::Value* total = prof->find("total_nanos");
    const json::Value* attr = prof->find("attribution");
    std::printf("self_profile: total=%.3fms attribution=%.1f%%\n",
                (total != nullptr ? total->number : 0.0) / 1e6,
                100.0 * (attr != nullptr ? attr->number : 0.0));
  }
}

int compare(const json::Value& base, const json::Value& next, double tolerance,
            bool all_counters) {
  int regressions = 0;
  std::printf("%-28s %14s %14s %9s  %s\n", "metric", "base", "new", "delta",
              "verdict");
  for (const KeyMetric& m : kKeyMetrics) {
    bool bf = false, nf = false;
    const double bv = number_at(base, m.path, &bf);
    const double nv = number_at(next, m.path, &nf);
    if (!bf || !nf) {
      std::printf("%-28s %14s %14s %9s  MISSING\n", m.path, bf ? "ok" : "-",
                  nf ? "ok" : "-", "");
      ++regressions;
      continue;
    }
    const double bad = badness(bv, nv, m.dir);
    const bool regressed = bad > tolerance;
    const double rel = bv == 0.0 ? 0.0 : 100.0 * (nv - bv) / std::fabs(bv);
    std::printf("%-28s %14.6g %14.6g %+8.2f%%  %s\n", m.path, bv, nv, rel,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }
  if (all_counters) {
    const json::Value* bc = base.find("counters");
    const json::Value* nc = next.find("counters");
    if (bc != nullptr && bc->is_object() && nc != nullptr) {
      for (const auto& [k, v] : bc->members) {
        const json::Value* nv = nc->find(k);
        if (!v.is_number() || nv == nullptr || !nv->is_number()) continue;
        if (v.number == nv->number) continue;
        std::printf("  counter %-32s %14.6g -> %-14.6g\n", k.c_str(), v.number,
                    nv->number);
      }
    }
  }
  if (regressions > 0) {
    std::printf("%d key metric(s) regressed beyond %.0f%% tolerance\n",
                regressions, 100.0 * tolerance);
    return 1;
  }
  std::printf("all key metrics within %.0f%% tolerance\n", 100.0 * tolerance);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "argument error: %s\n", args.error().c_str());
    return 2;
  }
  const std::set<std::string> known{"compare", "tolerance", "all", "help"};
  for (const auto& k : args.unknown_keys(known)) {
    std::fprintf(stderr, "unknown option --%s (see the header of tools/tcmpstat.cpp)\n",
                 k.c_str());
    return 2;
  }
  if (args.get_flag("help")) {
    std::printf("see the header comment of tools/tcmpstat.cpp for usage\n");
    return 0;
  }
  const double tolerance = args.get_double("tolerance", 0.2);
  if (tolerance < 0.0) {
    std::fprintf(stderr, "--tolerance must be >= 0\n");
    return 2;
  }

  if (args.get_flag("compare") || args.has("compare")) {
    // --compare BASE NEW: the flag form takes both as positionals, the
    // --compare=BASE form takes NEW as the positional.
    std::vector<std::string> paths;
    const std::string inline_base = args.get("compare", "");
    if (!inline_base.empty() && inline_base != "true") paths.push_back(inline_base);
    for (const auto& p : args.positional()) paths.push_back(p);
    if (paths.size() != 2) {
      std::fprintf(stderr, "usage: tcmpstat --compare base.json new.json\n");
      return 2;
    }
    json::Value base, next;
    if (!load(paths[0], base) || !load(paths[1], next)) return 2;
    if (!validate(base, paths[0]) || !validate(next, paths[1])) return 2;
    return compare(base, next, tolerance, args.get_flag("all"));
  }

  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: tcmpstat run.json | tcmpstat --compare a.json b.json\n");
    return 2;
  }
  json::Value doc;
  if (!load(args.positional()[0], doc)) return 2;
  if (!validate(doc, args.positional()[0])) return 2;
  summarize(doc);
  return 0;
}
