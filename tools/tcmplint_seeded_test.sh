#!/usr/bin/env bash
# Seeded-violation harness for tcmplint (mirrors tcmpcheck --mutate): plant
# exactly one violation of each rule in a scratch copy of src/ and assert the
# corresponding rule exits nonzero — proving the lint actually catches what
# it claims to. Also asserts the pristine copy is clean per rule, so a
# failure is attributable to the seeded edit alone.
#
#   tcmplint_seeded_test.sh <tcmplint-binary> <repo-root>
set -euo pipefail

lint="$1"
repo="$2"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

fresh_tree() {
  rm -rf "$scratch/tree"
  mkdir -p "$scratch/tree"
  cp -r "$repo/src" "$scratch/tree/src"
}

exercised=()

# expect_catch <rule> — the seeded tree must fail, naming the rule.
expect_catch() {
  local rule="$1"
  exercised+=("$rule")
  if "$lint" --root "$scratch/tree" --rule "$rule" >"$scratch/out" 2>&1; then
    echo "FAIL: seeded $rule violation was NOT caught"
    cat "$scratch/out"
    exit 1
  fi
  if ! grep -q "\[$rule\]" "$scratch/out"; then
    echo "FAIL: $rule finding not attributed to the rule"
    cat "$scratch/out"
    exit 1
  fi
  echo "ok: $rule catches its seeded violation"
}

# expect_clean <rule> — the pristine tree must pass the rule.
expect_clean() {
  local rule="$1"
  if ! "$lint" --root "$scratch/tree" --rule "$rule" >"$scratch/out" 2>&1; then
    echo "FAIL: pristine tree not clean under $rule"
    cat "$scratch/out"
    exit 1
  fi
}

# --- raw-unit: a double member with a unit suffix and no allow-comment.
fresh_tree
expect_clean raw-unit
cat > "$scratch/tree/src/common/seeded_raw_unit.hpp" <<'EOF'
#pragma once
struct SeededRawUnit {
  double energy_j = 0.0;
};
EOF
expect_catch raw-unit

# --- msgtype-tables: a new enumerator absent from both tables (and from
# kNumMsgTypes).
fresh_tree
expect_clean msgtype-tables
sed -i 's/^  kPutAck,/  kPutAck,\n  kSeededViolation,/' \
  "$scratch/tree/src/protocol/coherence_msg.hpp"
expect_catch msgtype-tables

# --- stat-registration: a Histogram member outside StatRegistry.
fresh_tree
expect_clean stat-registration
cat > "$scratch/tree/src/common/seeded_stat.hpp" <<'EOF'
#pragma once
#include "common/stats.hpp"
struct SeededStat {
  tcmp::Histogram leaked_{8, 4};
};
EOF
expect_catch stat-registration

# --- stat-string-hot-path: a per-event string-keyed counter lookup in a
# hot-path directory, outside any constructor/init and without the
# allow-comment.
fresh_tree
expect_clean stat-string-hot-path
cat > "$scratch/tree/src/protocol/seeded_stat_string.cpp" <<'EOF'
#include "common/stats.hpp"
namespace tcmp {
void seeded_hot_bump(StatRegistry& stats) {
  ++stats.counter("seeded.hot.lookup");
}
}  // namespace tcmp
EOF
expect_catch stat-string-hot-path

# --- obs-emit-interned: a per-event emit site resolving its handle from a
# string literal (the interning is supposed to happen once, at init).
fresh_tree
expect_clean obs-emit-interned
cat > "$scratch/tree/src/obs/seeded_emit.cpp" <<'EOF'
#include "common/stats.hpp"
namespace tcmp {
void seeded_emit_site(StatRegistry& stats) {
  stats.histogram_ref("seeded.slack.emit").add(1);
}
}  // namespace tcmp
EOF
expect_catch obs-emit-interned

# --- scheduled-contract: a ticked component that hides from the event
# kernel (no next_event/quiescent, no allow-comment).
fresh_tree
expect_clean scheduled-contract
cat > "$scratch/tree/src/common/seeded_unscheduled.hpp" <<'EOF'
#pragma once
#include "common/types.hpp"
struct SeededUnscheduled {
  void tick(tcmp::Cycle now);
};
EOF
expect_catch scheduled-contract

# --- mutable-static: a non-const function-local static (shared mutable
# state every sweep worker thread can reach).
fresh_tree
expect_clean mutable-static
cat > "$scratch/tree/src/common/seeded_mutable_static.cpp" <<'EOF'
namespace tcmp {
int seeded_count_calls() {
  static int hits = 0;
  return ++hits;
}
}  // namespace tcmp
EOF
expect_catch mutable-static

# --- guarded-field: a class holding a Mutex whose sibling field carries no
# TCMP_GUARDED_BY annotation.
fresh_tree
expect_clean guarded-field
cat > "$scratch/tree/src/common/seeded_guarded_field.hpp" <<'EOF'
#pragma once
#include "common/sync.hpp"
struct SeededGuardedField {
  tcmp::Mutex mu;
  int unguarded = 0;
};
EOF
expect_catch guarded-field

# --- tile-escape: a protocol-side struct caching a raw pointer to another
# tile's core (a direct cross-tile call path, exactly what Graphite-style
# partitioning must not find).
fresh_tree
expect_clean tile-escape
cat > "$scratch/tree/src/protocol/seeded_tile_escape.hpp" <<'EOF'
#pragma once
namespace tcmp::core {
class Core;
}
struct SeededTileEscape {
  tcmp::core::Core* victim_core = nullptr;
};
EOF
expect_catch tile-escape

# --- nondet-iteration: a cross-TU pair — the header declares an
# unordered_map member, the .cpp iterates it without an annotation. Exercises
# the class model's member-to-defining-TU resolution, not just same-file
# matching.
fresh_tree
expect_clean nondet-iteration
cat > "$scratch/tree/src/protocol/seeded_nondet.hpp" <<'EOF'
#pragma once
#include <unordered_map>
namespace tcmp::protocol {
class SeededNondet {
 public:
  int sum();

 private:
  std::unordered_map<int, int> table_;
};
}  // namespace tcmp::protocol
EOF
cat > "$scratch/tree/src/protocol/seeded_nondet.cpp" <<'EOF'
#include "protocol/seeded_nondet.hpp"
namespace tcmp::protocol {
int SeededNondet::sum() {
  int s = 0;
  for (const auto& [k, v] : table_) s += v * k;
  return s;
}
}  // namespace tcmp::protocol
EOF
expect_catch nondet-iteration

# --- uninit-member: a scalar member with no default initializer and no
# constructor covering it.
fresh_tree
expect_clean uninit-member
cat > "$scratch/tree/src/protocol/seeded_uninit.hpp" <<'EOF'
#pragma once
namespace tcmp::protocol {
struct SeededUninit {
  int counter_;
};
}  // namespace tcmp::protocol
EOF
expect_catch uninit-member

# --- reset-coverage: a lifecycle reset() that silently skips a member.
fresh_tree
expect_clean reset-coverage
cat > "$scratch/tree/src/protocol/seeded_reset.hpp" <<'EOF'
#pragma once
namespace tcmp::protocol {
struct SeededReset {
  void reset() { a_ = 0; }
  int a_ = 0;
  int b_ = 0;
};
}  // namespace tcmp::protocol
EOF
expect_catch reset-coverage

# --- snapshot-coverage: a snapshot_io() serializer that silently skips a
# member (it would restore to its constructed value and desynchronize the
# restored run).
fresh_tree
expect_clean snapshot-coverage
cat > "$scratch/tree/src/protocol/seeded_snapshot.hpp" <<'EOF'
#pragma once
namespace tcmp::protocol {
struct SeededSnapshot {
  template <class Ar>
  void snapshot_io(Ar& ar) {
    ar.value(a_);
  }
  int a_ = 0;
  int b_ = 0;
};
}  // namespace tcmp::protocol
EOF
expect_catch snapshot-coverage

# --- ambient-nondeterminism: wall-clock time outside the sanctioned TUs.
fresh_tree
expect_clean ambient-nondeterminism
cat > "$scratch/tree/src/common/seeded_ambient.cpp" <<'EOF'
#include <ctime>
namespace tcmp {
long seeded_wall_clock() { return static_cast<long>(std::time(nullptr)); }
}  // namespace tcmp
EOF
expect_catch ambient-nondeterminism

# --- pragma-once: a header without the guard.
fresh_tree
expect_clean pragma-once
echo "struct SeededNoGuard {};" > "$scratch/tree/src/common/seeded_guard.hpp"
expect_catch pragma-once

# --- self-contained: a header using std::vector without including it.
fresh_tree
expect_clean self-contained
cat > "$scratch/tree/src/common/seeded_self_contained.hpp" <<'EOF'
#pragma once
inline std::vector<int> seeded_not_self_contained() { return {}; }
EOF
expect_catch self-contained

# --- completeness: every rule tcmplint advertises must have been exercised
# above — a rule added to the linter without a seeded violation fails here.
while IFS= read -r rule; do
  found=0
  for e in "${exercised[@]}"; do
    [[ "$e" == "$rule" ]] && found=1
  done
  if [[ "$found" == 0 ]]; then
    echo "FAIL: rule '$rule' (from --list-rules) has no seeded violation"
    exit 1
  fi
done < <("$lint" --list-rules)

echo "tcmplint seeded-violation harness: all rules catch"
