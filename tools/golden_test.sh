#!/usr/bin/env bash
# Golden bit-identity test for the event-scheduled kernel refactor.
#
# Dead-cycle skipping is only admissible because skipped cycles are provable
# no-ops; the strongest end-to-end check of that argument is byte equality of
# full simulator reports against goldens recorded from the per-cycle seed
# loop. Four configs cover the space: both interconnects, compression on/off,
# and the three-stage router pipeline. `--threads 1` is passed explicitly:
# the partitioned driver (docs/partitioning.md) must keep the K = 1 path
# byte-identical to these goldens.
#
# Usage: golden_test.sh <tcmpsim-binary> <repo-root>
set -u
sim="$1"
root="$2"
golden="$root/tests/golden"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

declare -A runs=(
  [MP3D-het]="--app MP3D --config het --scale 0.25"
  [Barnes-base]="--app Barnes --config baseline --scale 0.25"
  [Water-cheng]="--app Water-nsq --config cheng --scale 0.25"
  [FFT-het3s]="--app FFT --config het --three-stage-router --scale 0.25"
)

fail=0
for name in MP3D-het Barnes-base Water-cheng FFT-het3s; do
  # shellcheck disable=SC2086
  if ! "$sim" ${runs[$name]} --threads 1 > "$tmp/$name.txt"; then
    echo "FAIL: $name: tcmpsim exited non-zero" >&2
    fail=1
    continue
  fi
  if ! diff -u "$golden/$name.txt" "$tmp/$name.txt" > "$tmp/$name.diff"; then
    echo "FAIL: $name: report differs from golden (first lines):" >&2
    head -n 20 "$tmp/$name.diff" >&2
    fail=1
  else
    echo "ok: $name byte-identical"
  fi
done
exit $fail
