// tcmplint_model — a lightweight cross-translation-unit class/field model
// shared by the determinism and state-integrity rules in tcmplint.
//
// One pass over a set of C++ sources produces, per class/struct definition:
//   - the simple and nesting-qualified name, the first base class, the
//     defining file and the owning directory under src/;
//   - every data member with its textual type, declaration line, and whether
//     it carries a default member initializer (`= x` or `{x}`);
//   - every constructor with the set of member names its mem-init list
//     covers — including constructors defined out of line in a .cpp, which
//     is the cross-TU part that line-regex rules cannot see;
//   - the body text of every method, whether defined in-class or out of
//     line (`void Directory::reset() { ... }` in directory.cpp attaches to
//     the Directory parsed from directory.hpp).
//
// The parser is deliberately *not* a C++ front end: it strips comments,
// strings and preprocessor lines, then walks braces with a scope stack and
// classifies each statement with anchored regexes. That is enough for this
// codebase's style (one declarator per line, no macros generating members),
// and every rule built on the model has an inline-annotation escape hatch
// for the residue. It must stay dependency-free: tcmplint lints the library
// and therefore cannot link against it.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace tcmplint {

struct Field {
  std::string name;
  std::string type;       ///< textual type as declared (annotations stripped)
  bool has_init = false;  ///< default member initializer present
  bool is_static = false;
  bool is_reference = false;
  std::string file;
  long line = 0;  ///< 1-based declaration line
};

struct Ctor {
  std::vector<std::string> inits;  ///< member names covered by the init list
  bool delegating = false;         ///< X(...) : X(...) — covered by target
  bool deleted = false;
  std::string file;
  long line = 0;
};

struct MethodBody {
  std::string name;
  std::string body;  ///< brace contents, comments stripped
  std::string file;
  long line = 0;
};

struct ClassInfo {
  std::string name;  ///< simple name (innermost)
  std::string qual;  ///< nesting-qualified: Outer::Inner (namespaces omitted)
  std::string base;  ///< first base class, "" if none
  std::string dir;   ///< first path component under src/ ("protocol", ...)
  std::string file;
  long line = 0;
  std::vector<Field> fields;
  std::vector<Ctor> ctors;
  std::vector<std::string> declared_methods;  ///< names declared in-class
  std::vector<MethodBody> bodies;             ///< in-class + out-of-line

  [[nodiscard]] const Field* field(const std::string& n) const {
    for (const Field& f : fields)
      if (f.name == n) return &f;
    return nullptr;
  }
  [[nodiscard]] std::vector<const MethodBody*> bodies_of(
      const std::string& n) const {
    std::vector<const MethodBody*> out;
    for (const MethodBody& b : bodies)
      if (b.name == n) out.push_back(&b);
    return out;
  }
};

struct Model {
  std::vector<ClassInfo> classes;
  std::set<std::string> enum_types;  ///< names of enum / enum class types

  [[nodiscard]] const ClassInfo* find(const std::string& simple_name) const {
    for (const ClassInfo& c : classes)
      if (c.name == simple_name || c.qual == simple_name) return &c;
    return nullptr;
  }
  [[nodiscard]] std::vector<const ClassInfo*> all(
      const std::string& simple_name) const {
    std::vector<const ClassInfo*> out;
    for (const ClassInfo& c : classes)
      if (c.name == simple_name) out.push_back(&c);
    return out;
  }
};

// ---------------------------------------------------------------------------
// Pass 1: turn raw source text into structure-only text. Comments, string
// and character literal *contents*, and preprocessor lines (including their
// backslash continuations — the TCMP_CHECK macro family has unbalanced
// braces across continued lines) are replaced by spaces; newlines survive so
// offsets keep mapping to the original line numbers.
inline std::string strip_code(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class St {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
    kPreproc
  };
  St st = St::kCode;
  std::string raw_delim;     // for R"delim( ... )delim"
  bool line_start = true;    // only whitespace seen on this line so far
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out[i] = '\n';
      if (st == St::kLineComment) st = St::kCode;
      if (st == St::kPreproc && (i == 0 || text[i - 1] != '\\'))
        st = St::kCode;
      line_start = true;
      continue;
    }
    switch (st) {
      case St::kCode:
        if (line_start && c == '#') {
          st = St::kPreproc;
          break;
        }
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // R"delim( — capture the delimiter up to the '('.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          st = St::kRawString;
          i = j;  // at '(' (or end)
        } else if (c == '"') {
          st = St::kString;
          out[i] = '"';
        } else if (c == '\'') {
          st = St::kChar;
        } else {
          out[i] = c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
          if (i < text.size() && text[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          st = St::kCode;
          out[i] = '"';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kRawString: {
        // Looking for )delim"
        if (c == ')' &&
            text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < text.size() &&
            text[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          st = St::kCode;
        }
        break;
      }
      case St::kLineComment:
      case St::kBlockComment:
        if (st == St::kBlockComment && c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        }
        break;
      case St::kPreproc:
        break;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) line_start = false;
  }
  return out;
}

namespace detail {

inline std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

inline std::string collapse_ws(const std::string& s) {
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      ws = true;
      continue;
    }
    if (ws && !out.empty()) out += ' ';
    ws = false;
    out += c;
  }
  return out;
}

/// Owning directory under src/: "src/protocol/l1_cache.hpp" -> "protocol".
/// Files not under a src/ prefix yield their first path component.
inline std::string dir_of(const std::string& file) {
  std::string f = file;
  std::replace(f.begin(), f.end(), '\\', '/');
  const std::size_t src = f.rfind("src/");
  std::string tail = src == std::string::npos ? f : f.substr(src + 4);
  const std::size_t slash = tail.find('/');
  return slash == std::string::npos ? std::string() : tail.substr(0, slash);
}

/// Member names mentioned in a constructor mem-init list ": a_(0), b_{1}".
/// Paren/brace depth tracking keeps nested calls (`a_(f(x, {1, 2}))`) from
/// re-matching inner identifiers as init items.
// True when `head` is a constructor-ish signature whose mem-init list is
// still open, so a following '{' is a braced member initializer
// (`: width_(w), count_{0}`) rather than the function body: the body's '{'
// follows ')' or '}', never the bare member identifier.
inline bool opens_init_brace(const std::string& head) {
  const std::size_t open = head.find('(');
  if (open == std::string::npos) return false;
  long depth = 0;
  std::size_t close = std::string::npos;
  for (std::size_t i = open; i < head.size(); ++i) {
    if (head[i] == '(') ++depth;
    if (head[i] == ')' && --depth == 0) {
      close = i;
      break;
    }
  }
  if (close == std::string::npos) return false;
  // Top-level ':' (not '::') after the parameter list opens an init list.
  std::size_t colon = std::string::npos;
  long pd = 0;
  for (std::size_t i = close + 1; i < head.size(); ++i) {
    const char ch = head[i];
    if (ch == '(' || ch == '{') ++pd;
    if (ch == ')' || ch == '}') --pd;
    if (pd == 0 && ch == ':' && (i + 1 >= head.size() || head[i + 1] != ':') &&
        head[i - 1] != ':') {
      colon = i;
      break;
    }
  }
  if (colon == std::string::npos) return false;
  for (std::size_t i = head.size(); i-- > colon;) {
    const unsigned char ch = static_cast<unsigned char>(head[i]);
    if (std::isspace(ch)) continue;
    return std::isalnum(ch) != 0 || ch == '_';
  }
  return false;
}

inline std::vector<std::string> parse_init_list(const std::string& list) {
  std::vector<std::string> out;
  long depth = 0;
  std::size_t i = 0;
  while (i < list.size()) {
    const char c = list[i];
    if (c == '(' || c == '{') ++depth;
    if (c == ')' || c == '}') --depth;
    if (depth == 0 &&
        (std::isalpha(static_cast<unsigned char>(c)) || c == '_')) {
      std::size_t j = i;
      while (j < list.size() &&
             (std::isalnum(static_cast<unsigned char>(list[j])) ||
              list[j] == '_'))
        ++j;
      std::size_t k = j;
      while (k < list.size() &&
             std::isspace(static_cast<unsigned char>(list[k])))
        ++k;
      if (k < list.size() && (list[k] == '(' || list[k] == '{'))
        out.push_back(list.substr(i, j - i));
      i = j;
      continue;
    }
    ++i;
  }
  return out;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kEnum, kBlock } kind;
  long class_index = -1;       ///< into Model::classes when kind == kClass
  bool capture_body = false;   ///< kBlock capturing a method body
  std::size_t body_begin = 0;  ///< offset of first char after '{'
  std::string method_name;     ///< when capture_body
  std::string method_class;    ///< "" = attach to enclosing class scope
  long method_line = 0;
};

struct OutOfLineBody {
  std::string cls;  ///< simple class name
  MethodBody body;
};

struct OutOfLineCtor {
  std::string cls;
  Ctor ctor;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Pass 2: scope-stack walk. `sources` are (display-name, text) pairs; order
// does not matter — out-of-line bodies are resolved against the class index
// after every file has been parsed.
inline Model build_model(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  using detail::Scope;
  Model model;
  std::vector<detail::OutOfLineBody> pending;
  std::vector<detail::OutOfLineCtor> pending_ctors;

  // Head regexes, anchored so variable declarations ("struct Pending p")
  // and enum heads ("enum class DirState") cannot masquerade as classes.
  static const std::regex class_head(
      R"(^(?:template\s*<.*>\s*)?(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?)"
      R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*(?:<[^;{]*>)?\s*)"
      R"((final\s*)?(?::\s*(.*))?$)");
  static const std::regex enum_head(
      R"(^enum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)\s*(?::[^{]*)?$)");
  static const std::regex ns_head(R"(^(inline\s+)?namespace\b)");
  static const std::regex qualified_def(
      R"(([A-Za-z_]\w*(?:\s*<[^<>]*>)?)\s*::\s*(~?[A-Za-z_]\w*)\s*\()");
  static const std::regex first_base(R"(^(?:virtual\s+)?(?:public\s+|protected\s+|private\s+)?([A-Za-z_][\w:]*))");

  for (const auto& [file, raw] : sources) {
    const std::string text = strip_code(raw);
    const std::string dir = detail::dir_of(file);
    std::vector<Scope> stack;
    std::string head;           // statement text since last ; { }
    std::size_t head_begin = 0; // offset where `head` started
    long line = 1;
    long head_line = 1;
    long init_brace = 0;  // depth of braced member initializers in an open
                          // mem-init list (`: count_{0}`)

    auto top_class = [&]() -> ClassInfo* {
      if (stack.empty() || stack.back().kind != Scope::Kind::kClass)
        return nullptr;
      return &model.classes[static_cast<std::size_t>(
          stack.back().class_index)];
    };

    auto qual_prefix = [&]() {
      std::string q;
      for (const Scope& s : stack)
        if (s.kind == Scope::Kind::kClass)
          q += model.classes[static_cast<std::size_t>(s.class_index)].name +
               "::";
      return q;
    };

    // Parse one class-scope statement (no braces, ended by ';').
    auto parse_member_stmt = [&](std::string stmt, long at_line,
                                 bool brace_init) {
      ClassInfo* cls = top_class();
      if (cls == nullptr) return;
      stmt = detail::collapse_ws(detail::trim(stmt));
      // Peel leading access specifiers swallowed into the statement head.
      static const std::regex access(R"(^(public|private|protected)\s*:\s*)");
      std::smatch am;
      while (std::regex_search(stmt, am, access)) stmt = am.suffix().str();
      if (stmt.empty()) return;
      static const std::regex skip(
          R"(^(using\b|typedef\b|friend\b|static_assert\b|template\b|operator\b))");
      if (std::regex_search(stmt, skip)) return;
      bool is_static = false;
      static const std::regex static_kw(R"(^(inline\s+)?static\s+)");
      std::smatch sm;
      if (std::regex_search(stmt, sm, static_kw)) {
        is_static = true;
        stmt = sm.suffix().str();
      }
      // Thread-safety annotations and attributes sit between the name and
      // the initializer; remove them before shape analysis.
      stmt = std::regex_replace(stmt, std::regex(R"(TCMP_\w+\s*\([^()]*\))"),
                                "");
      stmt = std::regex_replace(stmt, std::regex(R"(\[\[[^\]]*\]\])"), "");
      stmt = detail::trim(stmt);
      if (stmt.empty()) return;

      if (stmt.find('(') != std::string::npos && !brace_init) {
        // Method / constructor declaration (members use `=` or `{}` init
        // only, so any paren at class scope is function-shaped).
        static const std::regex fn_name(R"((~?[A-Za-z_]\w*)\s*\()");
        std::smatch fm;
        if (!std::regex_search(stmt, fm, fn_name)) return;
        const std::string name = fm[1].str();
        if (name == cls->name) {
          // Only `= default` / `= delete` are constructors in their own
          // right here: a plain declaration's mem-init list lives with its
          // out-of-line definition, which is captured separately — pushing
          // an empty-init ctor for the declaration would double-count it.
          const bool defaulted = stmt.find("= default") != std::string::npos;
          const bool deleted = stmt.find("= delete") != std::string::npos;
          if (defaulted || deleted) {
            Ctor ct;
            ct.file = file;
            ct.line = at_line;
            ct.deleted = deleted;
            cls->ctors.push_back(std::move(ct));
          }
        } else {
          cls->declared_methods.push_back(name);
        }
        return;
      }
      // Data member: TYPE NAME [array] [bitfield] [= init]?
      static const std::regex member(
          R"(^(.+?[\s&*>])([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*(:\s*\d+\s*)?(=.*|\{.*\})?$)");
      std::smatch mm;
      std::string body = stmt;
      if (!body.empty() && body.back() == ';') body.pop_back();
      body = detail::trim(body);
      if (!std::regex_match(body, mm, member)) return;
      Field f;
      f.type = detail::trim(mm[1].str());
      f.name = mm[2].str();
      f.has_init = brace_init || mm[5].matched;
      f.is_static = is_static;
      f.is_reference = f.type.find('&') != std::string::npos;
      f.file = file;
      f.line = at_line;
      cls->fields.push_back(std::move(f));
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '\n') {
        ++line;
        continue;
      }
      const bool in_capture =
          !stack.empty() && stack.back().kind == Scope::Kind::kBlock;
      if (c == '{') {
        // A '{' directly after an identifier in an open mem-init list is a
        // braced member initializer, not a scope: keep it in the head so the
        // init-list parse sees `count_{0}` whole.
        if (init_brace > 0 ||
            (!in_capture && detail::opens_init_brace(head))) {
          ++init_brace;
          head += c;
          continue;
        }
        std::string h = detail::collapse_ws(detail::trim(head));
        head.clear();
        // Access specifiers end in ':' (not ';'), so they accumulate into
        // the next statement's head — peel them before classifying.
        static const std::regex access_prefix(
            R"(^(public|private|protected)\s*:\s*)");
        std::smatch pm;
        while (std::regex_search(h, pm, access_prefix)) h = pm.suffix().str();
        std::smatch m;
        Scope s;
        s.kind = Scope::Kind::kBlock;
        const bool at_class = top_class() != nullptr;
        if (!in_capture && std::regex_match(h, m, class_head)) {
          ClassInfo ci;
          ci.name = m[2].str();
          // Qualified heads (`struct std::hash<...>`) keep the last
          // component as the class name.
          if (const std::size_t sep = ci.name.rfind("::");
              sep != std::string::npos)
            ci.name = detail::trim(ci.name.substr(sep + 2));
          ci.qual = qual_prefix() + ci.name;
          ci.dir = dir;
          ci.file = file;
          ci.line = head_line;
          if (m[4].matched) {
            std::smatch bm;
            const std::string bases = m[4].str();
            if (std::regex_search(bases, bm, first_base))
              ci.base = bm[1].str();
          }
          model.classes.push_back(std::move(ci));
          s.kind = Scope::Kind::kClass;
          s.class_index = static_cast<long>(model.classes.size()) - 1;
        } else if (!in_capture && std::regex_match(h, m, enum_head)) {
          model.enum_types.insert(m[1].str());
          s.kind = Scope::Kind::kEnum;
        } else if (!in_capture && std::regex_search(h, ns_head)) {
          s.kind = Scope::Kind::kNamespace;
        } else if (!in_capture && at_class && h.find('(') == std::string::npos &&
                   !h.empty()) {
          // Brace initializer of a data member: `Histogram slack{…};`
          parse_member_stmt(h + "{}", head_line, /*brace_init=*/true);
        } else if (!in_capture && !h.empty() &&
                   h.find('(') != std::string::npos) {
          // Function-shaped head: in-class method, out-of-line qualified
          // method, or free function. Record the body for the first two.
          std::string cls_name, fn_name;
          std::size_t params_open = std::string::npos;
          std::smatch qm;
          if (std::regex_search(h, qm, qualified_def)) {
            cls_name = qm[1].str();
            const std::size_t lt = cls_name.find('<');
            if (lt != std::string::npos)
              cls_name = detail::trim(cls_name.substr(0, lt));
            fn_name = qm[2].str();
            params_open = static_cast<std::size_t>(qm.position(0)) +
                          qm[0].str().size() - 1;
          } else if (at_class) {
            static const std::regex fn(R"((~?[A-Za-z_]\w*)\s*\()");
            std::smatch fm;
            if (std::regex_search(h, fm, fn)) {
              cls_name = "";  // attach to enclosing class
              fn_name = fm[1].str();
              params_open = static_cast<std::size_t>(fm.position(0)) +
                            fm[0].str().size() - 1;
            }
          }
          if (!fn_name.empty()) {
            s.capture_body = true;
            s.body_begin = i + 1;
            s.method_name = fn_name;
            s.method_class = cls_name;
            s.method_line = head_line;
            // Constructor? Parse the mem-init list between ')' and '{'.
            const std::string owner =
                !cls_name.empty() ? cls_name
                                  : (at_class ? top_class()->name : "");
            if (fn_name == owner && !owner.empty()) {
              Ctor ct;
              ct.file = file;
              ct.line = head_line;
              // Balance parens from the parameter list's '(' to find ITS
              // ')' — rfind would land on the last init item's paren.
              std::size_t close = std::string::npos;
              if (params_open != std::string::npos) {
                long pd = 0;
                for (std::size_t k = params_open; k < h.size(); ++k) {
                  if (h[k] == '(') ++pd;
                  if (h[k] == ')' && --pd == 0) {
                    close = k;
                    break;
                  }
                }
              }
              std::size_t colon = std::string::npos;
              if (close != std::string::npos) {
                // First top-level ':' after the parameter list (skip '::').
                for (std::size_t k = close + 1; k < h.size(); ++k) {
                  if (h[k] == ':' &&
                      (k + 1 >= h.size() || h[k + 1] != ':') &&
                      (k == 0 || h[k - 1] != ':')) {
                    colon = k;
                    break;
                  }
                }
              }
              if (colon != std::string::npos) {
                ct.inits = detail::parse_init_list(h.substr(colon + 1));
                ct.delegating = ct.inits.size() == 1 && ct.inits[0] == owner;
              }
              if (!cls_name.empty()) {
                // Out-of-line ctor: the defining .cpp may be parsed before
                // the header that declares the class (".cpp" sorts before
                // ".hpp"), so resolution is deferred like method bodies.
                pending_ctors.push_back({cls_name, std::move(ct)});
              } else if (ClassInfo* cc = top_class()) {
                cc->ctors.push_back(ct);
              }
            }
          }
        }
        stack.push_back(s);
        head_begin = i + 1;
        head_line = line;
        continue;
      }
      if (c == '}') {
        if (init_brace > 0) {
          --init_brace;
          head += c;
          continue;
        }
        if (!stack.empty()) {
          Scope s = stack.back();
          stack.pop_back();
          if (s.capture_body) {
            MethodBody mb;
            mb.name = s.method_name;
            mb.body = text.substr(s.body_begin, i - s.body_begin);
            mb.file = file;
            mb.line = s.method_line;
            if (s.method_class.empty()) {
              if (ClassInfo* cc = top_class()) cc->bodies.push_back(mb);
            } else {
              pending.push_back({s.method_class, std::move(mb)});
            }
          }
        }
        head.clear();
        head_begin = i + 1;
        head_line = line;
        continue;
      }
      if (c == ';') {
        const bool at_class =
            !stack.empty() && stack.back().kind == Scope::Kind::kClass;
        if (at_class)
          parse_member_stmt(head, head_line, /*brace_init=*/false);
        head.clear();
        head_begin = i + 1;
        head_line = line;
        continue;
      }
      // A bare access specifier ends at ':' (not ';'), so without this it
      // would linger in the head and the *next* member statement would
      // inherit the specifier's head_line — which breaks the line-anchored
      // annotation escape hatches for the first member after `private:`.
      if (c == ':' && (i + 1 >= text.size() || text[i + 1] != ':') &&
          (i == 0 || text[i - 1] != ':')) {
        const std::string h = detail::collapse_ws(detail::trim(head));
        if (h == "public" || h == "private" || h == "protected") {
          head.clear();
          head_begin = i + 1;
          head_line = line;
          continue;
        }
      }
      // Accumulate statement head only where it can matter (outside
      // captured bodies we still track braces but skip the text). Leading
      // whitespace is not buffered so head_line lands on the first token.
      if (head.empty()) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        head_line = line;
      }
      head += c;
      (void)head_begin;
    }
  }

  for (detail::OutOfLineBody& p : pending)
    for (ClassInfo& c : model.classes)
      if (c.name == p.cls) c.bodies.push_back(p.body);
  for (detail::OutOfLineCtor& p : pending_ctors)
    for (ClassInfo& c : model.classes)
      if (c.name == p.cls) c.ctors.push_back(p.ctor);

  return model;
}

/// Convenience: build the model from every .hpp/.cpp under `src_root`
/// (sorted for deterministic class order). `read` is injectable for tests.
inline Model build_model_from_dir(const std::filesystem::path& src_root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  if (fs::exists(src_root))
    for (const auto& e : fs::recursive_directory_iterator(src_root))
      if (e.is_regular_file() && (e.path().extension() == ".hpp" ||
                                  e.path().extension() == ".cpp"))
        files.push_back(e.path());
  std::sort(files.begin(), files.end());
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const auto& p : files) {
    std::string text;
    if (std::FILE* f = std::fopen(p.string().c_str(), "rb")) {
      char buf[1 << 15];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
      std::fclose(f);
    }
    sources.emplace_back(p.generic_string(), std::move(text));
  }
  return build_model(sources);
}

}  // namespace tcmplint
