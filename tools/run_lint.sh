#!/usr/bin/env bash
# Static-analysis gate for CI (and local use): clang-tidy with the repo's
# .clang-tidy profile over every library source, cppcheck on src/, and the
# repo-specific tcmplint rules (strong-type escapes, MsgType table coverage,
# stat registration, header hygiene). Any finding fails the run.
#
#   tools/run_lint.sh [build-dir]
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
# (the script configures one if missing).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build-lint"}"

if [[ ! -f "$build/compile_commands.json" ]]; then
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

echo "tcmplint: repo-specific rules"
cmake --build "$build" --target tcmplint -j "$(nproc)" >/dev/null
# Enumerate the rule set from the linter itself (never hard-code rule names
# here: a rule missing from this loop would be silently skipped by CI).
# Running per-rule also makes the failing rule obvious in the CI log.
mapfile -t rules < <("$build/tools/tcmplint" --list-rules)
for rule in "${rules[@]}"; do
  "$build/tools/tcmplint" --root "$repo" --rule "$rule"
done

# Clang's thread-safety analysis checks the TCMP_GUARDED_BY/TCMP_REQUIRES
# annotations from common/sync.hpp (a no-op under GCC, so the lint job is
# where they are actually enforced).
if command -v clang++ >/dev/null 2>&1; then
  echo "clang -Wthread-safety: src/"
  find "$repo/src" -name '*.cpp' | sort | while read -r f; do
    clang++ -std=c++20 -fsyntax-only -I "$repo/src" \
      -Wthread-safety -Werror=thread-safety-analysis "$f"
  done
else
  echo "clang++ not found; skipping -Wthread-safety pass"
fi

mapfile -t sources < <(find "$repo/src" "$repo/tools" -name '*.cpp' | sort)

echo "clang-tidy: ${#sources[@]} files"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$build" -quiet "${sources[@]}"
else
  clang-tidy -p "$build" --quiet "${sources[@]}"
fi

echo "cppcheck: src/"
cppcheck --enable=warning,performance,portability --inline-suppr \
  --error-exitcode=1 --quiet \
  --suppress=uninitMemberVar --suppress=useStlAlgorithm \
  -I "$repo/src" --std=c++20 "$repo/src"

echo "lint clean"
