#!/usr/bin/env bash
# Static-analysis gate for CI (and local use): clang-tidy with the repo's
# .clang-tidy profile over every library source, cppcheck on src/, and the
# repo-specific tcmplint rules (strong-type escapes, MsgType table coverage,
# stat registration, header hygiene, determinism/state-integrity). Any
# finding fails the run.
#
#   tools/run_lint.sh [build-dir]
#
# Every tool runs to completion even when an earlier one fails; the script
# reports the full list of failing tools at the end and exits non-zero once.
# (Stopping at the first failure made CI iterate one tool per push.)
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
# (the script configures one if missing).
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build-lint"}"

failed=()

# run <label> <cmd...>: run a tool to completion, record its label on failure.
run() {
  local label="$1"
  shift
  if ! "$@"; then
    failed+=("$label")
  fi
}

if [[ ! -f "$build/compile_commands.json" ]]; then
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

echo "tcmplint: repo-specific rules"
if cmake --build "$build" --target tcmplint -j "$(nproc)" >/dev/null; then
  # Enumerate the rule set from the linter itself (never hard-code rule names
  # here: a rule missing from this loop would be silently skipped by CI).
  # Running per-rule also makes the failing rule obvious in the CI log.
  mapfile -t rules < <("$build/tools/tcmplint" --list-rules)
  for rule in "${rules[@]}"; do
    run "tcmplint:$rule" "$build/tools/tcmplint" --root "$repo" --rule "$rule"
  done
else
  failed+=("tcmplint:build")
fi

# Clang's thread-safety analysis checks the TCMP_GUARDED_BY/TCMP_REQUIRES
# annotations from common/sync.hpp (a no-op under GCC, so the lint job is
# where they are actually enforced).
if command -v clang++ >/dev/null 2>&1; then
  echo "clang -Wthread-safety: src/"
  tsa_fail=0
  while read -r f; do
    clang++ -std=c++20 -fsyntax-only -I "$repo/src" \
      -Wthread-safety -Werror=thread-safety-analysis "$f" || tsa_fail=1
  done < <(find "$repo/src" -name '*.cpp' | sort)
  [[ $tsa_fail -eq 0 ]] || failed+=("clang-thread-safety")
else
  echo "clang++ not found; skipping -Wthread-safety pass"
fi

mapfile -t sources < <(find "$repo/src" "$repo/tools" -name '*.cpp' | sort)

echo "clang-tidy: ${#sources[@]} files"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run "clang-tidy" run-clang-tidy -p "$build" -quiet "${sources[@]}"
elif command -v clang-tidy >/dev/null 2>&1; then
  run "clang-tidy" clang-tidy -p "$build" --quiet "${sources[@]}"
else
  echo "clang-tidy not found; skipping"
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "cppcheck: src/"
  # No uninitMemberVar suppression: tcmplint's uninit-member rule holds the
  # tree to a stricter standard (default init or coverage in every ctor),
  # so cppcheck's weaker check must pass too.
  run "cppcheck" cppcheck --enable=warning,performance,portability \
    --inline-suppr --error-exitcode=1 --quiet \
    --suppress=useStlAlgorithm \
    -I "$repo/src" --std=c++20 "$repo/src"
else
  echo "cppcheck not found; skipping"
fi

if [[ ${#failed[@]} -gt 0 ]]; then
  echo ""
  echo "lint FAILED (${#failed[@]} tool(s)):"
  for t in "${failed[@]}"; do
    echo "  - $t"
  done
  exit 1
fi

echo "lint clean"
